package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// guarded.go resolves //replint:guarded gen=<counter> directives to
// (field, counter) object pairs. The directive lives on a struct field
// (doc or trailing comment) and names a sibling field of the same
// struct as its generation counter; stalegen then demands every write
// to the guarded field be post-dominated by a bump of the counter.

// guardIssue is a directive placement problem found while resolving
// guarded annotations, reported under the reserved "directive" rule by
// the stalegen pass of the package that declares it.
type guardIssue struct {
	pos token.Pos
	msg string
}

// collectGuardedFields resolves every guarded directive of the module.
// The first result maps each guarded field object to its counter field
// object; the second collects directives that parse but do not resolve
// (not on a struct field, or the counter is not an integer sibling
// field), keyed by declaring package.
func collectGuardedFields(m *Module) (map[types.Object]types.Object, map[*Package][]guardIssue) {
	guard := map[types.Object]types.Object{}
	bad := map[*Package][]guardIssue{}
	// unclaimed tracks every well-formed guarded comment by position;
	// field resolution removes the ones it consumes, and the leftovers
	// are misplaced directives.
	type site struct {
		pkg     *Package
		counter string
	}
	unclaimed := map[token.Pos]site{}
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if pd, ok := parseDirective(c.Text); ok && pd.Kind == "guarded" {
						unclaimed[c.Pos()] = site{pkg: pkg, counter: pd.Counter}
					}
				}
			}
		}
	}

	claim := func(field *ast.Field) (string, bool) {
		for _, g := range []*ast.CommentGroup{field.Doc, field.Comment} {
			if g == nil {
				continue
			}
			for _, c := range g.List {
				if s, ok := unclaimed[c.Pos()]; ok {
					delete(unclaimed, c.Pos())
					return s.counter, true
				}
			}
		}
		return "", false
	}

	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					counter, ok := claim(field)
					if !ok {
						continue
					}
					cf := structFieldNamed(st, counter)
					pos := field.Pos()
					switch {
					case cf == nil:
						bad[pkg] = append(bad[pkg], guardIssue{pos: pos,
							msg: "//replint:guarded counter " + counter + " is not a field of the enclosing struct"})
					case len(cf.Names) != 1 || !integerField(pkg, cf):
						bad[pkg] = append(bad[pkg], guardIssue{pos: pos,
							msg: "//replint:guarded counter " + counter + " must be a single unsigned-integer field"})
					default:
						counterObj := pkg.Info.Defs[cf.Names[0]]
						for _, name := range field.Names {
							if obj := pkg.Info.Defs[name]; obj != nil && counterObj != nil {
								guard[obj] = counterObj
							}
						}
					}
				}
				return true
			})
		}
	}

	// Whatever no struct field claimed is a misplaced directive.
	for pos, s := range unclaimed {
		bad[s.pkg] = append(bad[s.pkg], guardIssue{pos: pos,
			msg: "//replint:guarded applies to struct fields (doc or trailing comment)"})
	}
	return guard, bad
}

// structFieldNamed finds the field of st declaring the given name.
func structFieldNamed(st *ast.StructType, name string) *ast.Field {
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name == name {
				return f
			}
		}
	}
	return nil
}

// integerField reports whether the (single-name) field has an integer
// type — the only shape that can act as a generation counter.
func integerField(pkg *Package, f *ast.Field) bool {
	if len(f.Names) == 0 {
		return false
	}
	obj := pkg.Info.Defs[f.Names[0]]
	if obj == nil {
		return false
	}
	b, ok := obj.Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
