// Package legal implements the timing-driven legalizer of Section V-A:
// after embedding and replication some slots hold more cells than their
// capacity; the legalizer resolves one overlap at a time by rippling
// cells along a max-gain monotone path from the congested slot to a
// nearby free slot, where the per-move gain combines wiring and timing
// cost (C = α·C_T + (1−α)·C_W, α = 0.95 in the paper's experiments).
// Cells move at most one slot per ripple step, keeping them close to
// the locations the (much stronger) embedder chose. A cell rippled
// onto a slot holding a logically equivalent cell is unified with it
// and the pass stops.
package legal

import (
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/timing"
	"repro/internal/wire"
)

// Legalizer resolves placement overlaps.
type Legalizer struct {
	// Alpha weighs timing versus wiring cost (paper: 0.95).
	Alpha float64
	// TimingWindow is the fraction of the critical delay within which
	// a cell's slowest path contributes timing cost (paper: 0.40).
	TimingWindow float64
	// MaxPasses bounds the number of single-overlap passes as a
	// safety net against pathological placements.
	MaxPasses int
}

// New returns a legalizer with the paper's parameters.
func New() *Legalizer {
	return &Legalizer{Alpha: 0.95, TimingWindow: 0.40, MaxPasses: 100000}
}

// Stats reports what a Run did.
type Stats struct {
	// Passes is the number of single-overlap legalization passes.
	Passes int
	// Moves is the total number of single-slot cell moves.
	Moves int
	// Unified counts cells removed by ripple-move unification.
	Unified int
}

// Run legalizes the placement in place. The analysis provides arrival
// and downstream delays for the timing cost; it may be slightly stale
// during a multi-move pass, which matches the paper's flow (STA is
// refreshed once per optimization iteration, not per ripple move).
func (l *Legalizer) Run(nl *netlist.Netlist, pl *placement.Placement, dm arch.DelayModel, a *timing.Analysis) (Stats, error) {
	var st Stats
	for ; st.Passes < l.MaxPasses; st.Passes++ {
		over := pl.OverCapacity()
		if len(over) == 0 {
			return st, nil
		}
		// "If we have more than one overlap, we pick the first one we
		// encounter while we scan the placement."
		congested := over[0]
		if !pl.FPGA().IsLogic(congested) {
			return st, fmt.Errorf("legal: overfull I/O slot %v (pads cannot ripple)", congested)
		}
		moves, unified, err := l.resolveOne(nl, pl, dm, a, congested)
		st.Moves += moves
		st.Unified += unified
		if err != nil {
			return st, err
		}
	}
	return st, fmt.Errorf("legal: pass limit (%d) exceeded", l.MaxPasses)
}

// resolveOne relieves one congested slot by a single ripple move.
func (l *Legalizer) resolveOne(nl *netlist.Netlist, pl *placement.Placement, dm arch.DelayModel, a *timing.Analysis, congested arch.Loc) (moves, unified int, err error) {
	// Candidate targets: the paper's four quadrant-nearest free slots,
	// widened with the overall nearest free slots — in very dense
	// placements the extra candidates often offer a far less damaging
	// ripple direction.
	targets := pl.QuadrantFreeSlots(congested)
	for _, s := range pl.NearestFreeSlots(congested, 8) {
		dup := false
		for _, q := range targets {
			if q == s {
				dup = true
				break
			}
		}
		if !dup {
			targets = append(targets, s)
		}
	}
	if len(targets) == 0 {
		return 0, 0, fmt.Errorf("legal: no free slot to relieve %v (device full)", congested)
	}
	var bestPath []arch.Loc
	bestGain := math.Inf(-1)
	for _, free := range targets {
		path, gain := l.maxGainPath(nl, pl, dm, a, congested, free)
		if path != nil && gain > bestGain {
			bestGain = gain
			bestPath = path
		}
	}
	if bestPath == nil {
		return 0, 0, fmt.Errorf("legal: no ripple path from %v", congested)
	}
	// Execute the ripple from the free end backward: each cell moves
	// exactly one slot toward the free slot. "The best gain value
	// could still be negative (i.e., we may lose some quality)" — the
	// move happens regardless, because legality is mandatory.
	for i := len(bestPath) - 1; i > 0; i-- {
		from, to := bestPath[i-1], bestPath[i]
		id, ok := l.pickCell(nl, pl, dm, a, from, to)
		if !ok {
			continue // slot emptied by an earlier unification
		}
		// Unify-on-collision (Section V-A).
		if eq := l.equivalentAt(nl, pl, id, to); eq != netlist.None {
			pl.Remove(id)
			nl.Unify(netlist.CellID(eq), id)
			return moves, unified + 1, nil
		}
		pl.Place(id, to)
		moves++
	}
	return moves, unified, nil
}

// equivalentAt returns a cell at slot `to` logically equivalent to id,
// or netlist.None.
func (l *Legalizer) equivalentAt(nl *netlist.Netlist, pl *placement.Placement, id netlist.CellID, to arch.Loc) netlist.CellID {
	for _, other := range pl.At(to) {
		if other != id && nl.Equivalent(other, id) {
			return other
		}
	}
	return netlist.None
}

// pickCell chooses which cell at `from` moves to `to`: the one whose
// move has the highest gain (for singly occupied slots this is just
// the resident cell).
func (l *Legalizer) pickCell(nl *netlist.Netlist, pl *placement.Placement, dm arch.DelayModel, a *timing.Analysis, from, to arch.Loc) (netlist.CellID, bool) {
	cells := pl.At(from)
	if len(cells) == 0 {
		return 0, false
	}
	best := cells[0]
	bestGain := math.Inf(-1)
	for _, id := range cells {
		g := l.cellCost(nl, pl, dm, a, id, from) - l.cellCost(nl, pl, dm, a, id, to)
		if g > bestGain {
			bestGain = g
			best = id
		}
	}
	return best, true
}

// maxGainPath builds the gain graph between the congested slot and one
// free slot (Fig. 12) — all monotone staircase paths inside their
// bounding rectangle — and returns the max-gain path with its total
// gain. Edge gain is the cost delta of moving the cell resident at the
// edge's source one slot toward the target.
func (l *Legalizer) maxGainPath(nl *netlist.Netlist, pl *placement.Placement, dm arch.DelayModel, a *timing.Analysis, congested, free arch.Loc) ([]arch.Loc, float64) {
	dx := sign(int(free.X) - int(congested.X))
	dy := sign(int(free.Y) - int(congested.Y))
	w := abs(int(free.X)-int(congested.X)) + 1
	h := abs(int(free.Y)-int(congested.Y)) + 1

	slot := func(i, j int) arch.Loc {
		return arch.Loc{
			X: congested.X + int16(i*dx),
			Y: congested.Y + int16(j*dy),
		}
	}
	gain := make([]float64, w*h)
	parent := make([]int, w*h)
	for idx := range gain {
		gain[idx] = math.Inf(-1)
		parent[idx] = -1
	}
	gain[0] = 0
	// Relax in monotone (i+j) order.
	for s := 0; s < w+h-1; s++ {
		for i := 0; i <= s && i < w; i++ {
			j := s - i
			if j >= h {
				continue
			}
			cur := j*w + i
			if math.IsInf(gain[cur], -1) {
				continue
			}
			here := slot(i, j)
			for _, step := range [2][2]int{{1, 0}, {0, 1}} {
				ni, nj := i+step[0], j+step[1]
				if ni >= w || nj >= h {
					continue
				}
				next := slot(ni, nj)
				g := l.moveGain(nl, pl, dm, a, here, next)
				nIdx := nj*w + ni
				if total := gain[cur] + g; total > gain[nIdx] {
					gain[nIdx] = total
					parent[nIdx] = cur
				}
			}
		}
	}
	last := (h-1)*w + (w - 1)
	if math.IsInf(gain[last], -1) {
		return nil, 0
	}
	var path []arch.Loc
	for idx := last; idx >= 0; idx = parent[idx] {
		path = append(path, slot(idx%w, idx/w))
		if idx == 0 {
			break
		}
	}
	// Reverse into congested-to-free order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, gain[last]
}

// moveGain is the gain of moving the (best) resident of `from` to the
// neighboring slot `to`: Gain = C_curr − C_new (Section V-A).
func (l *Legalizer) moveGain(nl *netlist.Netlist, pl *placement.Placement, dm arch.DelayModel, a *timing.Analysis, from, to arch.Loc) float64 {
	cells := pl.At(from)
	if len(cells) == 0 {
		// Nothing to move; the ripple step is free.
		return 0
	}
	best := math.Inf(-1)
	for _, id := range cells {
		g := l.cellCost(nl, pl, dm, a, id, from) - l.cellCost(nl, pl, dm, a, id, to)
		if g > best {
			best = g
		}
	}
	return best
}

// cellCost is the composite cost of having the cell at loc:
// C = α·C_T + (1−α)·C_W.
func (l *Legalizer) cellCost(nl *netlist.Netlist, pl *placement.Placement, dm arch.DelayModel, a *timing.Analysis, id netlist.CellID, loc arch.Loc) float64 {
	return l.Alpha*l.timingCost(nl, pl, dm, a, id, loc) +
		(1-l.Alpha)*l.wireCost(nl, pl, id, loc)
}

// wireCost sums the corrected half-perimeter lengths of the nets the
// cell drives or reads, with the cell hypothetically at loc.
func (l *Legalizer) wireCost(nl *netlist.Netlist, pl *placement.Placement, id netlist.CellID, loc arch.Loc) float64 {
	override := func(c netlist.CellID) (arch.Loc, bool) {
		if c == id {
			return loc, true
		}
		return arch.Loc{}, false
	}
	total := 0.0
	for _, net := range wire.CellNets(nl, id) {
		total += wire.NetCost(nl, pl, net, override)
	}
	return total
}

// timingCost is "the squared delay of the slowest path through the
// current cell if such delay approaches the current critical delay
// (within 40%) and zero otherwise".
func (l *Legalizer) timingCost(nl *netlist.Netlist, pl *placement.Placement, dm arch.DelayModel, a *timing.Analysis, id netlist.CellID, loc arch.Loc) float64 {
	th := l.throughAt(nl, pl, dm, a, id, loc)
	if th < (1-l.TimingWindow)*a.Period {
		return 0
	}
	return th * th
}

// arrOf and downOf read the analysis arrays defensively: cells created
// after the analysis (fresh replicas) have no entry and default to
// arrival 0 / no downstream data. The engine refreshes STA every
// iteration, so this staleness is bounded to one legalization pass.
func arrOf(a *timing.Analysis, id netlist.CellID) float64 {
	if int(id) < len(a.Arr) {
		return a.Arr[id]
	}
	return 0
}

func downOf(a *timing.Analysis, id netlist.CellID) float64 {
	if int(id) < len(a.Down) {
		return a.Down[id]
	}
	return math.Inf(-1)
}

// throughAt estimates the slowest path through the cell with the cell
// at loc, splicing the cached arrival/downstream delays of its
// neighbors around the new wire lengths.
func (l *Legalizer) throughAt(nl *netlist.Netlist, pl *placement.Placement, dm arch.DelayModel, a *timing.Analysis, id netlist.CellID, loc arch.Loc) float64 {
	c := nl.Cell(id)
	// Worst input arrival at loc.
	in := 0.0
	haveIn := false
	for _, net := range c.Fanin {
		if net == netlist.None {
			continue
		}
		u := nl.Net(net).Driver
		t := arrOf(a, u) + dm.WireDelay(arch.Dist(pl.Loc(u), loc))
		if !haveIn || t > in {
			in = t
			haveIn = true
		}
	}
	intrinsic := timing.Intrinsic(dm, c)
	through := math.Inf(-1)
	if c.IsSink() && haveIn {
		through = in + intrinsic
	}
	// Worst downstream tail from loc.
	if c.Out != netlist.None {
		start := 0.0
		if !c.IsSource() {
			if !haveIn {
				return 0
			}
			start = in + intrinsic
		}
		for _, p := range nl.Net(c.Out).Sinks {
			v := p.Cell
			vc := nl.Cell(v)
			wireD := dm.WireDelay(arch.Dist(loc, pl.Loc(v)))
			var tail float64
			if down := downOf(a, v); vc.IsSink() {
				tail = wireD + timing.Intrinsic(dm, vc)
			} else if !math.IsInf(down, -1) {
				tail = wireD + dm.LUTDelay + down
			} else {
				continue
			}
			if t := start + tail; t > through {
				through = t
			}
		}
	}
	if math.IsInf(through, -1) {
		return 0
	}
	return through
}

func sign(x int) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
