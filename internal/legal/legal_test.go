package legal

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/timing"
)

func dm() arch.DelayModel { return arch.DelayModel{SegDelay: 1, LUTDelay: 2, IODelay: 0.5} }

// scenario builds a small placed design with two LUT chains sharing an
// FPGA: a critical chain (far IO-to-IO span) and a slack chain, and
// returns everything a legalizer run needs.
func scenario(t *testing.T) (*netlist.Netlist, *placement.Placement, *timing.Analysis) {
	t.Helper()
	n := netlist.New("legal")
	f := arch.New(12)
	mkChain := func(prefix string, luts int) {
		n.AddCell(prefix+"_i", netlist.IPad, 0)
		prev := prefix + "_i"
		for k := 0; k < luts; k++ {
			name := prefix + "_l" + string(rune('0'+k))
			c := n.AddCell(name, netlist.LUT, 1)
			n.ConnectByName(c.ID, 0, prev)
			prev = name
		}
		o := n.AddCell(prefix+"_o", netlist.OPad, 1)
		n.ConnectByName(o.ID, 0, prev)
	}
	mkChain("crit", 3)
	mkChain("cool", 3)
	pl := placement.New(f, n)
	at := func(name string, x, y int16) {
		id, ok := n.CellByName(name)
		if !ok {
			t.Fatalf("no cell %s", name)
		}
		pl.Place(id, arch.Loc{X: x, Y: y})
	}
	// Critical chain spans the whole die on row 6.
	at("crit_i", 0, 6)
	at("crit_l0", 3, 6)
	at("crit_l1", 6, 6)
	at("crit_l2", 9, 6)
	at("crit_o", 13, 6)
	// Cool chain is compact in a corner: lots of slack.
	at("cool_i", 0, 1)
	at("cool_l0", 1, 1)
	at("cool_l1", 2, 1)
	at("cool_l2", 3, 1)
	at("cool_o", 3, 0)
	a, err := timing.Analyze(n, pl, dm())
	if err != nil {
		t.Fatal(err)
	}
	return n, pl, a
}

func TestRunNoOverlapIsNoop(t *testing.T) {
	n, pl, a := scenario(t)
	st, err := New().Run(n, pl, dm(), a)
	if err != nil {
		t.Fatal(err)
	}
	if st.Moves != 0 || st.Passes != 0 {
		t.Errorf("no-op run made %d moves in %d passes", st.Moves, st.Passes)
	}
}

func TestResolveSingleOverlap(t *testing.T) {
	n, pl, a := scenario(t)
	// Drop the slack cell onto the critical cell's slot.
	cool, _ := n.CellByName("cool_l2")
	crit, _ := n.CellByName("crit_l1")
	pl.Place(cool, pl.Loc(crit))
	if pl.Legal() {
		t.Fatal("setup should be illegal")
	}
	st, err := New().Run(n, pl, dm(), a)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Legal() {
		t.Fatal("placement still illegal after Run")
	}
	if st.Moves == 0 {
		t.Error("expected at least one move")
	}
	// The critical cell should not have been the one displaced far:
	// with α = 0.95 the mover is the slack cell.
	if got := pl.Loc(crit); got != (arch.Loc{X: 6, Y: 6}) {
		t.Errorf("critical cell moved to %v; legalizer should displace the slack cell", got)
	}
	if err := pl.Validate(n); err != nil {
		t.Fatal(err)
	}
}

func TestResolveManyOverlaps(t *testing.T) {
	n, pl, a := scenario(t)
	// Stack three slack cells onto one slot.
	slot := arch.Loc{X: 4, Y: 4}
	for _, name := range []string{"cool_l0", "cool_l1", "cool_l2"} {
		id, _ := n.CellByName(name)
		pl.Place(id, slot)
	}
	st, err := New().Run(n, pl, dm(), a)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Legal() {
		t.Fatal("placement still illegal")
	}
	if st.Passes < 2 {
		t.Errorf("expected multiple passes, got %d", st.Passes)
	}
}

func TestRippleUnification(t *testing.T) {
	n, pl, a := scenario(t)
	// Replicate a slack cell; place the replica adjacent to the
	// original, overlapping another cell, so the ripple pushes it onto
	// its equivalent original and unification fires.
	orig, _ := n.CellByName("cool_l1") // at (2,1)
	rep := n.Replicate(orig)
	// Give the replica's output a sink so it isn't trivially dead:
	// steal one fanout of the original.
	origOut := n.Cell(orig).Out
	sinkPin := n.Net(origOut).Sinks[0]
	n.MoveSink(sinkPin, rep.ID)
	// Overlap the replica with cool_l0 at (1,1); its only escape with
	// positive gain is toward (1,2) where the original sits.
	pl.Place(rep.ID, arch.Loc{X: 1, Y: 1})
	st, err := New().Run(n, pl, dm(), a)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Legal() {
		t.Fatal("placement still illegal")
	}
	if st.Unified == 0 {
		t.Skip("ripple chose a different direction; unification not exercised on this geometry")
	}
	if n.Alive(rep.ID) {
		t.Error("unified replica should be deleted from the netlist")
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFullDeviceError(t *testing.T) {
	n := netlist.New("full")
	f := arch.New(2)
	pl := placement.New(f, n)
	n.AddCell("i", netlist.IPad, 0)
	var last string
	for k, s := range f.LogicSlots() {
		name := "l" + string(rune('0'+k))
		c := n.AddCell(name, netlist.LUT, 1)
		if k == 0 {
			n.ConnectByName(c.ID, 0, "i")
		} else {
			n.ConnectByName(c.ID, 0, last)
		}
		last = name
		pl.Place(c.ID, s)
	}
	o := n.AddCell("o", netlist.OPad, 1)
	n.ConnectByName(o.ID, 0, last)
	iID, _ := n.CellByName("i")
	pl.Place(iID, arch.Loc{X: 0, Y: 1})
	pl.Place(o.ID, arch.Loc{X: 3, Y: 1})
	// Add a fifth LUT with the grid already full: a genuine overflow.
	extra := n.AddCell("extra", netlist.LUT, 1)
	n.ConnectByName(extra.ID, 0, "i")
	o2 := n.AddCell("o2", netlist.OPad, 1)
	n.ConnectByName(o2.ID, 0, "extra")
	pl.Place(o2.ID, arch.Loc{X: 0, Y: 2})
	l1, _ := n.CellByName("l1")
	pl.Place(extra.ID, pl.Loc(l1))
	a, err := timing.Analyze(n, pl, dm())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New().Run(n, pl, dm(), a); err == nil {
		t.Error("expected error when no free slot exists")
	}
}

func TestGainGraphPrefersCheapDirection(t *testing.T) {
	// Fig. 12 behavior: between several free slots, the legalizer
	// picks the ripple direction with the best gain. Here the slack
	// cell overlaps; a free slot lies toward its own net (gain) and
	// others lie across the critical path (loss).
	n, pl, a := scenario(t)
	cool, _ := n.CellByName("cool_l2") // nets live near (0..2, 1..2)
	crit, _ := n.CellByName("crit_l1") // at (3,3)
	pl.Place(cool, pl.Loc(crit))
	if _, err := New().Run(n, pl, dm(), a); err != nil {
		t.Fatal(err)
	}
	got := pl.Loc(cool)
	// The displaced slack cell should end up on the side toward its
	// own cluster, not pushed away from it.
	if got.X > 6 || got.Y > 6 {
		t.Errorf("slack cell rippled away from its nets: %v", got)
	}
}

func TestThroughAtMatchesAnalysis(t *testing.T) {
	// throughAt with the cell at its own location must reproduce the
	// analyzer's Through value.
	n, pl, a := scenario(t)
	l := New()
	for _, name := range []string{"crit_l0", "crit_l1", "crit_l2", "cool_l1"} {
		id, _ := n.CellByName(name)
		got := l.throughAt(n, pl, dm(), a, id, pl.Loc(id))
		want := a.Through[id]
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("throughAt(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestTimingCostWindow(t *testing.T) {
	n, pl, a := scenario(t)
	l := New()
	crit, _ := n.CellByName("crit_l1")
	cool, _ := n.CellByName("cool_l1")
	if l.timingCost(n, pl, dm(), a, crit, pl.Loc(crit)) == 0 {
		t.Error("critical cell must have nonzero timing cost")
	}
	if l.timingCost(n, pl, dm(), a, cool, pl.Loc(cool)) != 0 {
		t.Error("far-from-critical cell must have zero timing cost (outside 40% window)")
	}
}
