package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDedupClaimCoalesce(t *testing.T) {
	d := NewDedup()
	h := testHash(1)
	id, coalesced, err := d.Claim(h, func() (string, error) { return "j1", nil })
	if err != nil || coalesced || id != "j1" {
		t.Fatalf("first Claim = %q coalesced=%v err=%v", id, coalesced, err)
	}
	// Duplicate while in flight coalesces without invoking submit.
	id, coalesced, err = d.Claim(h, func() (string, error) {
		t.Fatal("submit invoked for coalesced claim")
		return "", nil
	})
	if err != nil || !coalesced || id != "j1" {
		t.Fatalf("second Claim = %q coalesced=%v err=%v", id, coalesced, err)
	}
	if got, ok := d.Lookup(h); !ok || got != "j1" {
		t.Fatalf("Lookup = %q ok=%v", got, ok)
	}
	d.Done(h)
	if _, ok := d.Lookup(h); ok {
		t.Fatal("Lookup found hash after Done")
	}
	// After Done a new claim executes again.
	id, coalesced, err = d.Claim(h, func() (string, error) { return "j2", nil })
	if err != nil || coalesced || id != "j2" {
		t.Fatalf("post-Done Claim = %q coalesced=%v err=%v", id, coalesced, err)
	}
	d.Done(h)
	snap := d.Snapshot()
	if snap.Executed != 2 || snap.Coalesced != 1 || snap.Inflight != 0 {
		t.Errorf("snapshot %+v, want 2 executed / 1 coalesced / 0 inflight", snap)
	}
}

func TestDedupSubmitErrorDoesNotRegister(t *testing.T) {
	d := NewDedup()
	h := testHash(2)
	boom := errors.New("queue full")
	if _, _, err := d.Claim(h, func() (string, error) { return "", boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the submit error", err)
	}
	if _, ok := d.Lookup(h); ok {
		t.Fatal("failed submit left an inflight entry")
	}
	// The next claim retries the submission.
	id, coalesced, err := d.Claim(h, func() (string, error) { return "j1", nil })
	if err != nil || coalesced || id != "j1" {
		t.Fatalf("retry Claim = %q coalesced=%v err=%v", id, coalesced, err)
	}
}

// TestDedupSingleflight races many duplicate claims: exactly one
// submit must run per hash per flight.
func TestDedupSingleflight(t *testing.T) {
	d := NewDedup()
	h := testHash(3)
	var submits atomic.Int64
	var wg sync.WaitGroup
	ids := make([]string, 32)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, _, err := d.Claim(h, func() (string, error) {
				return fmt.Sprintf("j%d", submits.Add(1)), nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = id
		}(i)
	}
	wg.Wait()
	if n := submits.Load(); n != 1 {
		t.Fatalf("%d submits ran, want exactly 1", n)
	}
	for i, id := range ids {
		if id != ids[0] {
			t.Fatalf("claim %d got %q, claim 0 got %q — divergent IDs for one hash", i, id, ids[0])
		}
	}
}
