package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/client"
)

// Config describes one member of a static cluster.
type Config struct {
	// NodeID is this member's unique name.
	NodeID string
	// Peers maps every OTHER member's ID to its base URL.
	Peers map[string]string
	// VNodes is the virtual-node count per member (0 = DefaultVNodes).
	VNodes int
	// Quorum sets N/R/W; the zero value selects DefaultQuorum for the
	// membership size.
	Quorum QuorumConfig
	// Store is this node's replica storage (nil = in-memory).
	Store Store
}

// Node is one repld cluster member: it wraps the local job manager
// with content-hash routing (jobs run on their ring owner), the
// read-through dedup layer, and quorum replication of results. Its
// Handler serves the same public surface as a single-process repld —
// clients need no cluster awareness beyond retrying across endpoints —
// plus the internode /v1/cluster/... endpoints.
//
// Job IDs leaving a clustered node are qualified "j000001@node2";
// any member resolves them, redirecting (307) to the owning node when
// the job is not local. Completed results are additionally addressable
// as "h<spec-hash>" on every member, served from the quorum store.
type Node struct {
	cfg    Config
	mgr    *serve.Manager
	srv    *serve.Server
	inner  http.Handler
	ring   *Ring
	quorum *Quorum
	dedup  *Dedup
	store  Store
	peers  map[string]*PeerClient // static after construction

	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	forwarded     atomic.Int64
	forwardFailed atomic.Int64
	localFallback atomic.Int64
}

// NewNode builds a cluster member around an existing job manager.
func NewNode(m *serve.Manager, cfg Config) (*Node, error) {
	if cfg.NodeID == "" {
		return nil, fmt.Errorf("cluster: node needs an ID")
	}
	members := make([]string, 0, len(cfg.Peers)+1)
	members = append(members, cfg.NodeID)
	for id := range cfg.Peers {
		if id == cfg.NodeID {
			return nil, fmt.Errorf("cluster: peer list contains own ID %q", id)
		}
		members = append(members, id)
	}
	sort.Strings(members)
	ring, err := NewRing(members, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.Store == nil {
		cfg.Store = NewMemStore()
	}
	qcfg := cfg.Quorum
	if qcfg.N == 0 {
		opTimeout := qcfg.OpTimeout
		qcfg = DefaultQuorum(len(members))
		qcfg.OpTimeout = opTimeout
	}
	// Partial configs derive the unset quorums: majority writes, reads
	// sized so R+W = N+1.
	if qcfg.W == 0 {
		qcfg.W = qcfg.N/2 + 1
	}
	if qcfg.R == 0 {
		qcfg.R = qcfg.N - qcfg.W + 1
	}
	baseCtx, cancel := context.WithCancel(context.Background())
	peers := make(map[string]*PeerClient, len(cfg.Peers))
	replicas := []Replica{&LocalReplica{NodeID: cfg.NodeID, S: cfg.Store}}
	for _, id := range members {
		if id == cfg.NodeID {
			continue
		}
		p := NewPeerClient(id, cfg.Peers[id])
		peers[id] = p
		replicas = append(replicas, p)
	}
	q, err := NewQuorum(ring, replicas, qcfg, baseCtx)
	if err != nil {
		cancel()
		return nil, err
	}
	srv := serve.NewServer(m)
	return &Node{
		cfg:     cfg,
		mgr:     m,
		srv:     srv,
		inner:   srv.Handler(),
		ring:    ring,
		quorum:  q,
		dedup:   NewDedup(),
		store:   cfg.Store,
		peers:   peers,
		baseCtx: baseCtx,
		cancel:  cancel,
	}, nil
}

// Close stops background replication and closes the store. The job
// manager is drained separately (serve.Manager.Shutdown).
func (n *Node) Close() error {
	n.cancel()
	n.wg.Wait()
	return n.store.Close()
}

// Ring exposes the placement ring (for tests and introspection).
func (n *Node) Ring() *Ring { return n.ring }

// Handler builds the route table: the cluster-aware job surface, the
// internode endpoints, and the wrapped single-process routes
// (healthz, pprof) from the inner serve handler.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", n.handleJobs)
	mux.HandleFunc("/v1/jobs/", n.handleJob)
	mux.HandleFunc("/v1/cluster/submit", n.handleClusterSubmit)
	mux.HandleFunc("/v1/cluster/replicate", n.handleReplicate)
	mux.HandleFunc("/v1/cluster/fetch", n.handleFetch)
	mux.HandleFunc("/v1/cluster/info", n.handleInfo)
	mux.HandleFunc("/debug/vars", n.handleVars)
	mux.Handle("/", n.inner)
	return mux
}

func (n *Node) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		n.handleSubmit(w, r, true)
	case http.MethodGet:
		// Listings are per-node: they enumerate local executions.
		n.inner.ServeHTTP(w, r)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// handleClusterSubmit is the internode submit: execute as owner, never
// re-forward, so a forwarded job makes at most one hop.
func (n *Node) handleClusterSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	n.handleSubmit(w, r, false)
}

// handleSubmit is the clustered submission path: hash the spec, serve
// it from the replicated cache if a completed result exists, otherwise
// route it to its ring owner (forwarding at most one hop) and run it
// through the dedup layer there.
func (n *Node) handleSubmit(w http.ResponseWriter, r *http.Request, allowForward bool) {
	spec, err := serve.DecodeSpec(http.MaxBytesReader(w, r.Body, serve.MaxSpecBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
		return
	}
	h, err := HashSpec(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Read-through: a completed record anywhere in the quorum answers
	// the submission without consuming a queue slot. A quorum failure
	// here only costs the optimization — fall through and execute.
	if rec, found, rerr := n.quorum.Read(r.Context(), h); rerr == nil && found && rec.State == serve.StateDone {
		n.dedup.Hit()
		writeJSON(w, http.StatusAccepted, n.cacheStatus(h, rec, &spec))
		return
	}
	owners := n.ring.Owners(h, n.quorum.Config().N)
	if allowForward && len(owners) > 0 && owners[0] != n.cfg.NodeID {
		for _, id := range owners {
			if id == n.cfg.NodeID {
				continue
			}
			st, ferr := n.peers[id].SubmitNoForward(r.Context(), spec)
			switch {
			case ferr == nil:
				n.forwarded.Add(1)
				w.Header().Set("Location", "/v1/jobs/"+st.ID)
				writeJSON(w, http.StatusAccepted, st)
				return
			case errors.Is(ferr, client.ErrQueueFull):
				// The owner is saturated: propagate the backpressure
				// rather than scattering duplicates across non-owners,
				// which would defeat coalescing.
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusTooManyRequests, ferr.Error())
				return
			case errors.Is(ferr, client.ErrDraining):
				writeError(w, http.StatusServiceUnavailable, ferr.Error())
				return
			}
			// Transport-level failure: try the next replica owner.
			n.forwardFailed.Add(1)
		}
		// Every owner is unreachable. Bit-determinism makes executing
		// here sound (the result is identical wherever it runs); we
		// lose coalescing with the dead owner's in-flight jobs, not
		// correctness.
		n.localFallback.Add(1)
	}
	n.runLocal(w, r, spec, h)
}

// runLocal executes (or coalesces) the job on this node.
func (n *Node) runLocal(w http.ResponseWriter, _ *http.Request, spec serve.JobSpec, h Hash) {
	id, coalesced, err := n.dedup.Claim(h, func() (string, error) {
		st, serr := n.mgr.Submit(spec)
		if serr != nil {
			return "", serr
		}
		n.watch(h, st.ID)
		return st.ID, nil
	})
	switch {
	case errors.Is(err, serve.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, serve.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	st, gerr := n.mgr.Get(id)
	if gerr != nil {
		writeError(w, http.StatusInternalServerError, gerr.Error())
		return
	}
	source := "executed"
	if coalesced {
		source = "coalesced"
	}
	n.decorate(&st, h, source)
	w.Header().Set("Location", "/v1/jobs/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

// watch follows one local execution to its terminal state and
// replicates the outcome: version 1 announces the execution, version 2
// carries the completed result. Failed and cancelled jobs are retired
// from the singleflight set without poisoning the cache.
func (n *Node) watch(h Hash, id string) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer n.dedup.Done(h)
		wctx, cancel := context.WithTimeout(n.baseCtx, n.quorum.Config().OpTimeout)
		_ = n.quorum.Write(wctx, Record{
			Hash: h, Version: 1, State: serve.StateRunning, Node: n.cfg.NodeID,
		})
		cancel()
		st, err := n.mgr.Wait(n.baseCtx, id)
		if err != nil || st.State != serve.StateDone || st.Result == nil {
			return
		}
		payload, merr := json.Marshal(st.Result)
		if merr != nil {
			return
		}
		// The write deadline is generous relative to OpTimeout: the
		// result is the expensive thing the whole layer exists to
		// keep, so give slow replicas every chance to ack.
		wctx2, cancel2 := context.WithTimeout(n.baseCtx, 3*n.quorum.Config().OpTimeout)
		defer cancel2()
		_ = n.quorum.Write(wctx2, Record{
			Hash: h, Version: 2, State: serve.StateDone, Node: n.cfg.NodeID, Result: payload,
		})
	}()
}

// handleJob resolves the three job-ID forms: "h<hash>" from the
// quorum store, "<id>@<node>" locally or via a 307 redirect to the
// owning member, and bare local IDs.
func (n *Node) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		http.NotFound(w, r)
		return
	}
	if r.Method != http.MethodGet && r.Method != http.MethodDelete {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if h, ok := parseHashID(id); ok {
		n.handleHashJob(w, r, h)
		return
	}
	local, node, qualified := splitQualified(id)
	if qualified && node != n.cfg.NodeID {
		p, ok := n.peers[node]
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Sprintf("no cluster member %q", node))
			return
		}
		// The standard HTTP client follows 307 for GET and DELETE, so
		// any member is a valid entry point for any job ID.
		http.Redirect(w, r, p.BaseURL+"/v1/jobs/"+id, http.StatusTemporaryRedirect)
		return
	}
	var (
		st  serve.Status
		err error
	)
	if r.Method == http.MethodGet {
		st, err = n.mgr.Get(local)
	} else {
		st, err = n.mgr.Cancel(local)
	}
	if errors.Is(err, serve.ErrNotFound) {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	st.Node = n.cfg.NodeID
	if qualified {
		st.ID = local + "@" + n.cfg.NodeID
	}
	// Polled statuses carry the content address too, so a client that
	// only kept the job ID still learns the spec hash. Source is left
	// alone: how the submission was satisfied is known only on the
	// submit response.
	if hh, herr := HashSpec(st.Spec); herr == nil {
		st.SpecHash = hh.String()
	}
	writeJSON(w, http.StatusOK, st)
}

// handleHashJob serves a content-addressed job status from the quorum
// store, falling back to the local in-flight execution when the
// record has not landed yet.
func (n *Node) handleHashJob(w http.ResponseWriter, r *http.Request, h Hash) {
	if r.Method == http.MethodDelete {
		// Cancelling a content address only makes sense for a local
		// in-flight execution; completed records are immutable.
		if id, ok := n.dedup.Lookup(h); ok {
			st, err := n.mgr.Cancel(id)
			if err == nil {
				n.decorate(&st, h, "executed")
				writeJSON(w, http.StatusOK, st)
				return
			}
		}
	}
	rec, found, err := n.quorum.Read(r.Context(), h)
	if err != nil {
		writeError(w, http.StatusBadGateway, err.Error())
		return
	}
	if found {
		writeJSON(w, http.StatusOK, n.cacheStatus(h, rec, nil))
		return
	}
	if id, ok := n.dedup.Lookup(h); ok {
		if st, gerr := n.mgr.Get(id); gerr == nil {
			n.decorate(&st, h, "executed")
			writeJSON(w, http.StatusOK, st)
			return
		}
	}
	writeError(w, http.StatusNotFound, "no record for spec hash "+h.String())
}

// handleReplicate applies one record to the local store (internode).
func (n *Node) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var rec Record
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxEntryLen))
	if err := dec.Decode(&rec); err != nil {
		writeError(w, http.StatusBadRequest, "bad record: "+err.Error())
		return
	}
	applied, err := n.store.Put(rec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"applied": applied})
}

// handleFetch serves one local record (internode).
func (n *Node) handleFetch(w http.ResponseWriter, r *http.Request) {
	h, err := ParseHash(r.URL.Query().Get("hash"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	rec, found, err := n.store.Get(h)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if !found {
		writeError(w, http.StatusNotFound, "no record for "+h.String())
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// infoDoc is the /v1/cluster/info document.
type infoDoc struct {
	Node    string   `json:"node"`
	Members []string `json:"members"`
	VNodes  int      `json:"vnodes"`
	N       int      `json:"replication_factor"`
	R       int      `json:"read_quorum"`
	W       int      `json:"write_quorum"`
	// StoreLen and StoreHashes expose the local replica's contents
	// (hashes truncated to a sample) for smoke tests and debugging.
	StoreLen    int      `json:"store_len"`
	StoreHashes []string `json:"store_hashes,omitempty"`
}

func (n *Node) handleInfo(w http.ResponseWriter, _ *http.Request) {
	cfg := n.quorum.Config()
	vn := n.cfg.VNodes
	if vn <= 0 {
		vn = DefaultVNodes
	}
	doc := infoDoc{
		Node:     n.cfg.NodeID,
		Members:  n.ring.Nodes(),
		VNodes:   vn,
		N:        cfg.N,
		R:        cfg.R,
		W:        cfg.W,
		StoreLen: n.store.Len(),
	}
	hashes := n.store.Hashes()
	if len(hashes) > 8 {
		hashes = hashes[:8]
	}
	for _, h := range hashes {
		doc.StoreHashes = append(doc.StoreHashes, h.String())
	}
	writeJSON(w, http.StatusOK, doc)
}

// Snapshot is the cluster section of /debug/vars.
type Snapshot struct {
	Node          string         `json:"node"`
	Members       []string       `json:"members"`
	N             int            `json:"replication_factor"`
	R             int            `json:"read_quorum"`
	W             int            `json:"write_quorum"`
	StoreLen      int            `json:"store_len"`
	Forwarded     int64          `json:"submissions_forwarded"`
	ForwardFailed int64          `json:"forward_failures"`
	LocalFallback int64          `json:"local_fallbacks"`
	Dedup         DedupSnapshot  `json:"dedup"`
	Quorum        QuorumSnapshot `json:"quorum"`
}

// Snapshot returns the node's cluster counters.
func (n *Node) Snapshot() Snapshot {
	cfg := n.quorum.Config()
	return Snapshot{
		Node:          n.cfg.NodeID,
		Members:       n.ring.Nodes(),
		N:             cfg.N,
		R:             cfg.R,
		W:             cfg.W,
		StoreLen:      n.store.Len(),
		Forwarded:     n.forwarded.Load(),
		ForwardFailed: n.forwardFailed.Load(),
		LocalFallback: n.localFallback.Load(),
		Dedup:         n.dedup.Snapshot(),
		Quorum:        n.quorum.Snapshot(),
	}
}

// handleVars serves the single-process introspection document with the
// cluster section appended, so dashboards work against both shapes.
func (n *Node) handleVars(w http.ResponseWriter, _ *http.Request) {
	doc := struct {
		serve.VarsDoc
		Cluster Snapshot `json:"cluster"`
	}{n.srv.Vars(), n.Snapshot()}
	writeJSON(w, http.StatusOK, doc)
}

// decorate attaches the cluster fields to a local job status and
// qualifies its ID so any member can resolve it later.
func (n *Node) decorate(st *serve.Status, h Hash, source string) {
	st.SpecHash = h.String()
	st.Source = source
	st.Node = n.cfg.NodeID
	if !strings.Contains(st.ID, "@") {
		st.ID += "@" + n.cfg.NodeID
	}
}

// cacheStatus synthesizes a job status from a replicated record.
func (n *Node) cacheStatus(h Hash, rec Record, spec *serve.JobSpec) serve.Status {
	st := serve.Status{
		ID:       "h" + h.String(),
		State:    rec.State,
		SpecHash: h.String(),
		Source:   "cache",
		Node:     rec.Node,
	}
	if spec != nil {
		st.Spec = *spec
	}
	if len(rec.Result) > 0 {
		var res serve.Result
		if json.Unmarshal(rec.Result, &res) == nil {
			st.Result = &res
		}
	}
	return st
}

// parseHashID recognizes the content-addressed job-ID form:
// "h" + 64 hex chars.
func parseHashID(id string) (Hash, bool) {
	if len(id) != 65 || id[0] != 'h' {
		return Hash{}, false
	}
	h, err := ParseHash(id[1:])
	if err != nil {
		return Hash{}, false
	}
	return h, true
}

// splitQualified splits "local@node" IDs at the last '@'.
func splitQualified(id string) (local, node string, ok bool) {
	i := strings.LastIndex(id, "@")
	if i <= 0 || i == len(id)-1 {
		return id, "", false
	}
	return id[:i], id[i+1:], true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// WaitSettled blocks until no execution is in flight on this node or
// the timeout elapses — the graceful-shutdown hook between draining
// the HTTP listener and closing the store, so completed results get
// replicated before the process exits.
func (n *Node) WaitSettled(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for n.dedup.Snapshot().Inflight > 0 {
		if n.baseCtx.Err() != nil || time.Now().After(deadline) {
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
	return true
}
