package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per member. 64 points per
// node keeps the expected load imbalance across a handful of nodes in
// the few-percent range while the ring stays a few KB.
const DefaultVNodes = 64

// Ring is a consistent-hash ring over a static membership. Each node
// contributes VNodes points (SHA-256 of "id#i"), and a key's owners
// are the first N distinct nodes clockwise from the key's point. The
// same construction routes jobs (owner = first node) and places result
// replicas (owners = first N), so a key's executor is always also a
// replica holder — local reads on the owner are the common case.
//
// A Ring is immutable after construction: membership changes build a
// new ring. Consistent hashing bounds the churn — removing one of M
// nodes remaps only ~1/M of the key space.
type Ring struct {
	nodes  []string // sorted member IDs
	points []ringPoint
}

type ringPoint struct {
	h    uint64
	node int32 // index into nodes
}

// NewRing builds a ring over the given member IDs with vnodes points
// per member (<= 0 selects DefaultVNodes). IDs must be non-empty and
// unique.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	for i, id := range sorted {
		if id == "" {
			return nil, fmt.Errorf("cluster: empty node ID")
		}
		if i > 0 && sorted[i-1] == id {
			return nil, fmt.Errorf("cluster: duplicate node ID %q", id)
		}
	}
	r := &Ring{
		nodes:  sorted,
		points: make([]ringPoint, 0, len(sorted)*vnodes),
	}
	for ni, id := range sorted {
		for v := 0; v < vnodes; v++ {
			s := sha256.Sum256([]byte(id + "#" + strconv.Itoa(v)))
			r.points = append(r.points, ringPoint{
				h:    binary.BigEndian.Uint64(s[:8]),
				node: int32(ni),
			})
		}
	}
	// Ties (astronomically unlikely) break toward the lower node
	// index, so the ring is a pure function of the membership.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Nodes returns the sorted member IDs.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Size returns the member count.
func (r *Ring) Size() int { return len(r.nodes) }

// Owners returns the first n distinct nodes clockwise from the key's
// ring point, in ring order: Owners(h, 1)[0] is the key's owner,
// Owners(h, N) its replica set. n is clamped to the member count.
func (r *Ring) Owners(h Hash, n int) []string {
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	if n <= 0 {
		return nil
	}
	key := binary.BigEndian.Uint64(h[:8])
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= key })
	out := make([]string, 0, n)
	seen := make(map[int32]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, r.nodes[p.node])
	}
	return out
}
