package cluster

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/serve"
)

// FuzzCanonicalSpec holds the hashing pipeline to error-never-panic on
// arbitrary spec JSON, and to the round-trip property on everything
// that canonicalizes: Decode(Encode(Canonicalize(spec))) must
// reproduce the canonical form exactly, and re-hashing it must be
// stable.
func FuzzCanonicalSpec(f *testing.F) {
	f.Add(`{"circuit":"ex5p"}`)
	f.Add(`{"circuit":"apex4","scale":0.5,"algo":"lex3","seed":7,"effort":1.5,"max_iters":20,"route":true}`)
	f.Add(`{"netlist":"circuit t\ninput a\noutput o a\n"}`)
	f.Add(`{"netlist":"circuit t\n\n# c\ninput a\nlut n a a\noutput o n\n"}`)
	f.Add(`{"circuit":"ex5p","parallelism":8,"timeout_ms":1000}`)
	f.Add(`{"circuit":"ex5p","scale":1e308}`)
	f.Add(`{"circuit":"","algo":"\x00"}`)
	f.Add(`{`)
	f.Add(`{"circuit":"ex5p","algo":"race"}`)
	f.Add(`{"circuit":"ex5p","algo":"race","race_variants":["lex5","rt","lex5"],"period_bound":12.5}`)
	f.Add(`{"circuit":"ex5p","algo":"race","race_variants":[""],"period_bound":-1}`)
	f.Add(`{"circuit":"ex5p","algo":"race","race_variants":["fastest"]}`)
	f.Add(`{"circuit":"ex5p","qos":"deadline"}`)
	f.Add(`{"circuit":"ex5p","qos":"DEADLINE","algo":"RACE","period_bound":1e308}`)
	f.Fuzz(func(t *testing.T, body string) {
		spec, err := serve.DecodeSpec(strings.NewReader(body))
		if err != nil {
			return
		}
		c, err := Canonicalize(spec)
		if err != nil {
			return
		}
		enc := c.Encode()
		back, err := DecodeCanonical(enc)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v\nencoded: %q", err, enc)
		}
		if back != c {
			t.Fatalf("round trip drifted:\n  in  %+v\n  out %+v", c, back)
		}
		h1, err := HashSpec(spec)
		if err != nil {
			t.Fatalf("HashSpec failed after Canonicalize succeeded: %v", err)
		}
		h2, err := HashSpec(spec)
		if err != nil || h1 != h2 {
			t.Fatalf("hash not stable: %s vs %s (err %v)", h1, h2, err)
		}
	})
}

// FuzzDecodeCanonical holds the binary decoder to error-never-panic on
// arbitrary bytes, and to encode-stability on everything it accepts.
func FuzzDecodeCanonical(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("replspec\x01"))
	f.Add(CanonSpec{Circuit: "ex5p", Scale: 0.2, Algo: "rt", Seed: 1, Effort: 2}.Encode())
	f.Add(CanonSpec{Netlist: "circuit t\ninput a\noutput o a\n", Algo: "lex5", Seed: -3, MaxIters: 9, Route: true}.Encode())
	f.Add(CanonSpec{Circuit: "ex5p", Algo: "race", RaceVariants: "rt,lex3", PeriodBound: 10.5}.Encode())
	// Regression seed in the spirit of the PR 8 NaN-effort crasher: the
	// decoder must pass NaN bit patterns through without normalizing
	// them (Validate rejects them later, at the spec layer).
	f.Add(CanonSpec{Circuit: "ex5p", Algo: "race", RaceVariants: "lex2", PeriodBound: math.NaN()}.Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCanonical(data)
		if err != nil {
			return
		}
		// Anything the decoder accepts must survive a re-encode cycle
		// unchanged. Compare the re-encodings, not the structs: float
		// bit patterns (including NaN payloads) round-trip exactly, but
		// NaN breaks struct equality; and varints may arrive
		// non-minimal, so the original bytes are not the reference.
		enc := c.Encode()
		back, err := DecodeCanonical(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted spec failed: %v", err)
		}
		if enc2 := back.Encode(); !bytes.Equal(enc, enc2) {
			t.Fatalf("re-encode cycle drifted:\n  in  %q\n  out %q", enc, enc2)
		}
	})
}
