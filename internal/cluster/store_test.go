package cluster

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/serve"
)

// openStore builds each Store implementation for the shared
// table-driven contract tests.
func storeImpls(t *testing.T) map[string]func(t *testing.T) Store {
	t.Helper()
	return map[string]func(t *testing.T) Store{
		"mem": func(t *testing.T) Store { return NewMemStore() },
		"disk": func(t *testing.T) Store {
			s, err := OpenDiskStore(filepath.Join(t.TempDir(), "results.log"))
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	}
}

func doneRec(h Hash, version uint64, node string) Record {
	return Record{
		Hash: h, Version: version, State: serve.StateDone, Node: node,
		Result: json.RawMessage(`{"iterations":3}`),
	}
}

// TestStoreContract runs the Put/Get/Len/Hashes semantics every Store
// implementation must share.
func TestStoreContract(t *testing.T) {
	for name, open := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			s := open(t)
			defer s.Close()
			h1, h2 := testHash(1), testHash(2)

			if _, found, err := s.Get(h1); err != nil || found {
				t.Fatalf("empty store Get = found=%v err=%v", found, err)
			}
			applied, err := s.Put(doneRec(h1, 1, "n1"))
			if err != nil || !applied {
				t.Fatalf("first Put applied=%v err=%v", applied, err)
			}
			// Same version: keep existing (ties are benign by
			// bit-determinism, so first write wins).
			applied, err = s.Put(doneRec(h1, 1, "n2"))
			if err != nil || applied {
				t.Fatalf("equal-version Put applied=%v err=%v, want not applied", applied, err)
			}
			// Lower version: stale, rejected.
			if applied, _ = s.Put(Record{Hash: h1, Version: 0, State: serve.StateRunning}); applied {
				t.Fatal("stale Put applied")
			}
			// Higher version supersedes.
			if applied, _ = s.Put(doneRec(h1, 2, "n3")); !applied {
				t.Fatal("newer Put not applied")
			}
			rec, found, err := s.Get(h1)
			if err != nil || !found || rec.Version != 2 || rec.Node != "n3" {
				t.Fatalf("Get after supersede = %+v found=%v err=%v", rec, found, err)
			}
			if _, err := s.Put(doneRec(h2, 1, "n1")); err != nil {
				t.Fatal(err)
			}
			if s.Len() != 2 {
				t.Fatalf("Len = %d, want 2", s.Len())
			}
			hashes := s.Hashes()
			if len(hashes) != 2 {
				t.Fatalf("Hashes = %d entries, want 2", len(hashes))
			}
			for i := 1; i < len(hashes); i++ {
				if string(hashes[i-1][:]) >= string(hashes[i][:]) {
					t.Fatal("Hashes not sorted")
				}
			}
		})
	}
}

// TestStoreConcurrent hammers one store from many goroutines (the race
// detector is the assertion that matters).
func TestStoreConcurrent(t *testing.T) {
	for name, open := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			s := open(t)
			defer s.Close()
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						h := testHash(i % 10)
						if _, err := s.Put(doneRec(h, uint64(g*50+i), "n")); err != nil {
							t.Error(err)
							return
						}
						if _, _, err := s.Get(h); err != nil {
							t.Error(err)
							return
						}
						s.Len()
					}
				}(g)
			}
			wg.Wait()
			if s.Len() != 10 {
				t.Errorf("Len = %d, want 10", s.Len())
			}
		})
	}
}

// TestDiskStoreRecovery: a reopened log must reproduce the exact
// resident set, including version supersessions written live.
func TestDiskStoreRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Put(Record{Hash: testHash(i), Version: 1, State: serve.StateRunning, Node: "n1"}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Put(doneRec(testHash(i), 2, "n1")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 5 {
		t.Fatalf("recovered Len = %d, want 5", re.Len())
	}
	for i := 0; i < 5; i++ {
		rec, found, err := re.Get(testHash(i))
		if err != nil || !found {
			t.Fatalf("record %d: found=%v err=%v", i, found, err)
		}
		wantVer := uint64(1)
		wantState := serve.StateRunning
		if i < 3 {
			wantVer, wantState = 2, serve.StateDone
		}
		if rec.Version != wantVer || rec.State != wantState {
			t.Errorf("record %d recovered as v%d %s, want v%d %s",
				i, rec.Version, rec.State, wantVer, wantState)
		}
	}
	// Recovery must not have re-appended anything: a second reopen sees
	// the same set from the same bytes.
	fi1, _ := os.Stat(path)
	re.Close()
	re2, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	fi2, _ := os.Stat(path)
	if fi1.Size() != fi2.Size() {
		t.Errorf("log grew across reopen: %d → %d bytes", fi1.Size(), fi2.Size())
	}
}

// TestDiskStoreTornTail: a crash mid-append leaves a partial entry; the
// reopen must truncate it and keep everything before it.
func TestDiskStoreTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Put(doneRec(testHash(i), 1, "n1")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	tears := map[string][]byte{
		"partial header":  append(append([]byte{}, intact...), 0x00, 0x00),
		"partial payload": append(append([]byte{}, intact...), 0x00, 0x00, 0x00, 0x20, '{', '"'),
		"garbage payload": append(append([]byte{}, intact...), 0x00, 0x00, 0x00, 0x02, 'x', 'y'),
		"huge length":     append(append([]byte{}, intact...), 0xff, 0xff, 0xff, 0xff),
	}
	for name, torn := range tears {
		t.Run(name, func(t *testing.T) {
			p := filepath.Join(t.TempDir(), "torn.log")
			if err := os.WriteFile(p, torn, 0o644); err != nil {
				t.Fatal(err)
			}
			re, err := OpenDiskStore(p)
			if err != nil {
				t.Fatalf("open with torn tail: %v", err)
			}
			defer re.Close()
			if re.Len() != 3 {
				t.Fatalf("recovered %d records, want 3", re.Len())
			}
			// The tail must be gone from disk, so the next append starts
			// at a clean boundary.
			fi, _ := os.Stat(p)
			if fi.Size() != int64(len(intact)) {
				t.Errorf("log is %d bytes after truncation, want %d", fi.Size(), len(intact))
			}
			// And the store keeps working after recovery.
			if applied, err := re.Put(doneRec(testHash(99), 1, "n2")); err != nil || !applied {
				t.Fatalf("Put after recovery applied=%v err=%v", applied, err)
			}
		})
	}
}
