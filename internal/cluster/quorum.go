package cluster

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// Replica is one member's store as seen from a given node: the local
// Store for the node itself, a PeerClient for everyone else.
type Replica interface {
	ID() string
	Store(ctx context.Context, rec Record) error
	Fetch(ctx context.Context, h Hash) (Record, bool, error)
}

// LocalReplica adapts the node's own Store to the Replica interface.
type LocalReplica struct {
	NodeID string
	S      Store
}

// ID returns the owning node's ID.
func (l *LocalReplica) ID() string { return l.NodeID }

// Store applies rec to the local store.
func (l *LocalReplica) Store(_ context.Context, rec Record) error {
	_, err := l.S.Put(rec)
	return err
}

// Fetch reads h from the local store.
func (l *LocalReplica) Fetch(_ context.Context, h Hash) (Record, bool, error) {
	return l.S.Get(h)
}

// QuorumConfig sets the replication factor and quorum sizes. The
// linearizability condition is R+W > N: every read set intersects
// every write set, so a read that reaches R replicas always sees the
// newest acknowledged version.
type QuorumConfig struct {
	N, R, W int
	// OpTimeout bounds each per-replica store/fetch (default 5s).
	OpTimeout time.Duration
}

// Validate checks the quorum arithmetic against the membership size.
func (c QuorumConfig) Validate(members int) error {
	if c.N < 1 || c.N > members {
		return fmt.Errorf("cluster: replication factor %d outside [1, %d]", c.N, members)
	}
	if c.R < 1 || c.R > c.N || c.W < 1 || c.W > c.N {
		return fmt.Errorf("cluster: quorums R=%d W=%d outside [1, N=%d]", c.R, c.W, c.N)
	}
	if c.R+c.W <= c.N {
		return fmt.Errorf("cluster: R=%d + W=%d must exceed N=%d for linearizable reads", c.R, c.W, c.N)
	}
	return nil
}

// DefaultQuorum picks N = min(3, members) with majority write and
// matching read quorum (R+W = N+1).
func DefaultQuorum(members int) QuorumConfig {
	n := 3
	if members < n {
		n = members
	}
	w := n/2 + 1
	return QuorumConfig{N: n, R: n - w + 1, W: w}
}

// Quorum runs W-of-N writes and R-of-N reads with read-repair over the
// ring's replica placement. It is the only layer that talks to more
// than one Replica; above it, records read and write like a single
// store that stays available with up to N-quorum members down.
type Quorum struct {
	ring     *Ring
	replicas map[string]Replica // static after construction
	cfg      QuorumConfig

	// repairCtx detaches read-repair writes from request lifetimes;
	// the owning node cancels it on Close.
	repairCtx context.Context

	writes      atomic.Int64
	writeFails  atomic.Int64
	reads       atomic.Int64
	readMisses  atomic.Int64
	readRepairs atomic.Int64
}

// NewQuorum builds the quorum layer. replicas must cover every ring
// member; repairCtx bounds background read-repair (nil = background).
func NewQuorum(ring *Ring, replicas []Replica, cfg QuorumConfig, repairCtx context.Context) (*Quorum, error) {
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 5 * time.Second
	}
	if err := cfg.Validate(ring.Size()); err != nil {
		return nil, err
	}
	m := make(map[string]Replica, len(replicas))
	for _, r := range replicas {
		m[r.ID()] = r
	}
	for _, id := range ring.Nodes() {
		if m[id] == nil {
			return nil, fmt.Errorf("cluster: no replica for ring member %q", id)
		}
	}
	if repairCtx == nil {
		repairCtx = context.Background()
	}
	return &Quorum{ring: ring, replicas: m, cfg: cfg, repairCtx: repairCtx}, nil
}

// Config returns the quorum arithmetic in force.
func (q *Quorum) Config() QuorumConfig { return q.cfg }

// Write replicates rec to its N owners and returns once W of them
// acked. Slower replicas keep receiving the write in the background
// (their goroutines run to completion under the per-op timeout), so a
// successful Write usually converges to all N shortly after.
func (q *Quorum) Write(ctx context.Context, rec Record) error {
	owners := q.ring.Owners(rec.Hash, q.cfg.N)
	q.writes.Add(1)
	acks := make(chan error, len(owners))
	for _, id := range owners {
		rep := q.replicas[id]
		go func() {
			sctx, cancel := context.WithTimeout(ctx, q.cfg.OpTimeout)
			defer cancel()
			if err := sctx.Err(); err != nil {
				acks <- err
				return
			}
			acks <- rep.Store(sctx, rec)
		}()
	}
	got, acked := 0, 0
	var lastErr error
	for got < len(owners) && acked < q.cfg.W {
		select {
		case err := <-acks:
			got++
			if err == nil {
				acked++
			} else {
				lastErr = err
			}
		case <-ctx.Done():
			q.writeFails.Add(1)
			return fmt.Errorf("cluster: write interrupted at %d/%d acks: %w",
				acked, q.cfg.W, ctx.Err())
		}
	}
	if acked < q.cfg.W {
		q.writeFails.Add(1)
		return fmt.Errorf("cluster: write quorum %d/%d not reached (last error: %v)",
			acked, q.cfg.W, lastErr)
	}
	return nil
}

// readResp is one replica's answer during a quorum read.
type readResp struct {
	id    string
	rec   Record
	found bool
	err   error
}

// Read fetches h from its N owners, requires R responses, and returns
// the highest-version record seen. Replicas observed stale or missing
// are repaired in the background with the winning record. found=false
// means a full read quorum agreed the record does not exist; an error
// means fewer than R replicas answered at all.
func (q *Quorum) Read(ctx context.Context, h Hash) (Record, bool, error) {
	owners := q.ring.Owners(h, q.cfg.N)
	q.reads.Add(1)
	resps := make(chan readResp, len(owners))
	for _, id := range owners {
		id, rep := id, q.replicas[id]
		go func() {
			fctx, cancel := context.WithTimeout(ctx, q.cfg.OpTimeout)
			defer cancel()
			if err := fctx.Err(); err != nil {
				resps <- readResp{id: id, err: err}
				return
			}
			rec, found, err := rep.Fetch(fctx, h)
			resps <- readResp{id: id, rec: rec, found: found, err: err}
		}()
	}
	var (
		answered []readResp
		got      int
	)
	for got < len(owners) && len(answered) < q.cfg.R {
		select {
		case r := <-resps:
			got++
			if r.err == nil {
				answered = append(answered, r)
			}
		case <-ctx.Done():
			q.readMisses.Add(1)
			return Record{}, false, fmt.Errorf("cluster: read interrupted at %d/%d responses: %w",
				len(answered), q.cfg.R, ctx.Err())
		}
	}
	if len(answered) < q.cfg.R {
		q.readMisses.Add(1)
		return Record{}, false, fmt.Errorf("cluster: read quorum %d/%d not reached for %s",
			len(answered), q.cfg.R, h)
	}
	var best Record
	haveBest := false
	for _, r := range answered {
		if r.found && (!haveBest || r.rec.Version > best.Version) {
			best, haveBest = r.rec, true
		}
	}
	if !haveBest {
		return Record{}, false, nil
	}
	// Read-repair: push the winner to every answered replica that was
	// behind. Unanswered replicas converge via the write path's
	// background acks or the next read.
	for _, r := range answered {
		if r.found && r.rec.Version >= best.Version {
			continue
		}
		rep := q.replicas[r.id]
		q.readRepairs.Add(1)
		go func() {
			rctx, cancel := context.WithTimeout(q.repairCtx, q.cfg.OpTimeout)
			defer cancel()
			if rctx.Err() != nil {
				return
			}
			_ = rep.Store(rctx, best)
		}()
	}
	return best, true, nil
}

// QuorumSnapshot is the layer's counter view for /debug/vars.
type QuorumSnapshot struct {
	Writes      int64 `json:"writes"`
	WriteFails  int64 `json:"write_quorum_failures"`
	Reads       int64 `json:"reads"`
	ReadMisses  int64 `json:"read_quorum_failures"`
	ReadRepairs int64 `json:"read_repairs"`
}

// Snapshot returns the current counters.
func (q *Quorum) Snapshot() QuorumSnapshot {
	return QuorumSnapshot{
		Writes:      q.writes.Load(),
		WriteFails:  q.writeFails.Load(),
		Reads:       q.reads.Load(),
		ReadMisses:  q.readMisses.Load(),
		ReadRepairs: q.readRepairs.Load(),
	}
}
