package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/client"
)

// PeerClient talks to one other cluster member: the public job surface
// through the embedded serve client, plus the internode endpoints
// (/v1/cluster/submit, /v1/cluster/replicate, /v1/cluster/fetch). It
// doubles as the Replica implementation for remote members.
type PeerClient struct {
	// Client serves GET /v1/jobs/... proxy reads and carries BaseURL.
	*client.Client
	NodeID string
}

// NewPeerClient builds a client for the member id at baseURL.
func NewPeerClient(id, baseURL string) *PeerClient {
	c := client.New(baseURL)
	// Internode hops are LAN-fast; a tight timeout keeps a dead peer
	// from stalling forwards and quorum ops behind TCP timeouts.
	c.HTTPClient = &http.Client{Timeout: 10 * time.Second}
	return &PeerClient{Client: c, NodeID: id}
}

// ID returns the member ID (Replica interface).
func (p *PeerClient) ID() string { return p.NodeID }

// SubmitNoForward submits a spec to the peer's internode endpoint,
// which executes as owner without re-forwarding — the forwarding hop
// happens at most once, so misrouted submissions cannot loop.
func (p *PeerClient) SubmitNoForward(ctx context.Context, spec serve.JobSpec) (serve.Status, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return serve.Status{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		p.BaseURL+"/v1/cluster/submit", bytes.NewReader(body))
	if err != nil {
		return serve.Status{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.Client.HTTPClient.Do(req)
	if err != nil {
		return serve.Status{}, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
		var st serve.Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return serve.Status{}, fmt.Errorf("cluster: decode forwarded status: %w", err)
		}
		return st, nil
	case http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		return serve.Status{}, client.ErrQueueFull
	case http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		return serve.Status{}, client.ErrDraining
	default:
		msg := readError(resp.Body)
		return serve.Status{}, fmt.Errorf("cluster: forward to %s: %s: %s", p.NodeID, resp.Status, msg)
	}
}

// Store replicates rec to the peer (Replica interface).
func (p *PeerClient) Store(ctx context.Context, rec Record) error {
	body, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		p.BaseURL+"/v1/cluster/replicate", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.Client.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: replicate to %s: %s: %s", p.NodeID, resp.Status, readError(resp.Body))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// Fetch reads the peer's local record for h (Replica interface).
func (p *PeerClient) Fetch(ctx context.Context, h Hash) (Record, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		p.BaseURL+"/v1/cluster/fetch?hash="+h.String(), nil)
	if err != nil {
		return Record{}, false, err
	}
	resp, err := p.Client.HTTPClient.Do(req)
	if err != nil {
		return Record{}, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var rec Record
		if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
			return Record{}, false, fmt.Errorf("cluster: decode record from %s: %w", p.NodeID, err)
		}
		return rec, true, nil
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		return Record{}, false, nil
	default:
		return Record{}, false, fmt.Errorf("cluster: fetch from %s: %s: %s", p.NodeID, resp.Status, readError(resp.Body))
	}
}

// readError extracts the {"error": ...} body, if any.
func readError(r io.Reader) string {
	var e struct {
		Error string `json:"error"`
	}
	_ = json.NewDecoder(r).Decode(&e)
	return e.Error
}
