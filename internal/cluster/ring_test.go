package cluster

import (
	"crypto/sha256"
	"fmt"
	"strconv"
	"testing"
)

// testHash derives a distinct Hash from i, spread uniformly over the
// key space the way real spec hashes are.
func testHash(i int) Hash {
	return sha256.Sum256([]byte("key-" + strconv.Itoa(i)))
}

func TestRingValidation(t *testing.T) {
	for _, nodes := range [][]string{nil, {}, {""}, {"a", "a"}, {"a", "b", "a"}} {
		if _, err := NewRing(nodes, 8); err == nil {
			t.Errorf("NewRing(%q): expected error", nodes)
		}
	}
	if _, err := NewRing([]string{"solo"}, 0); err != nil {
		t.Errorf("single-node ring with default vnodes: %v", err)
	}
}

// TestRingDeterminism: the ring is a pure function of the membership —
// construction order, repeated construction, and Owners calls must all
// agree.
func TestRingDeterminism(t *testing.T) {
	a, err := NewRing([]string{"n1", "n2", "n3"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"n3", "n1", "n2"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		h := testHash(i)
		oa, ob := a.Owners(h, 3), b.Owners(h, 3)
		if fmt.Sprint(oa) != fmt.Sprint(ob) {
			t.Fatalf("key %d: owner sets differ across construction order: %v vs %v", i, oa, ob)
		}
		if fmt.Sprint(a.Owners(h, 3)) != fmt.Sprint(oa) {
			t.Fatalf("key %d: Owners not stable across calls", i)
		}
	}
}

func TestRingOwnersDistinct(t *testing.T) {
	r, err := NewRing([]string{"n1", "n2", "n3", "n4", "n5"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		h := testHash(i)
		owners := r.Owners(h, 3)
		if len(owners) != 3 {
			t.Fatalf("key %d: got %d owners, want 3", i, len(owners))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %d: duplicate owner %q in %v", i, o, owners)
			}
			seen[o] = true
		}
	}
	// n clamped to the membership; n<=0 yields nothing.
	if got := r.Owners(testHash(0), 99); len(got) != 5 {
		t.Errorf("Owners(h, 99) = %d nodes, want all 5", len(got))
	}
	if got := r.Owners(testHash(0), 0); got != nil {
		t.Errorf("Owners(h, 0) = %v, want nil", got)
	}
}

// TestRingBalance: with vnodes, primary ownership should spread across
// members — no node owns a wildly disproportionate share.
func TestRingBalance(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4"}
	r, err := NewRing(nodes, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Owners(testHash(i), 1)[0]]++
	}
	fair := keys / len(nodes)
	for _, n := range nodes {
		if c := counts[n]; c < fair/3 || c > fair*3 {
			t.Errorf("node %s owns %d of %d keys (fair share %d): imbalance beyond 3x", n, c, keys, fair)
		}
	}
}

// TestRingStability pins the consistent-hashing property: removing one
// member must not move keys between the surviving members. Every key
// either keeps its owner or (if the dead node owned it) moves to a
// survivor.
func TestRingStability(t *testing.T) {
	full, err := NewRing([]string{"n1", "n2", "n3", "n4", "n5"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing([]string{"n1", "n2", "n4", "n5"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 2000
	moved := 0
	for i := 0; i < keys; i++ {
		h := testHash(i)
		before := full.Owners(h, 1)[0]
		after := reduced.Owners(h, 1)[0]
		if before == "n3" {
			moved++
			continue // had to move; any survivor is fine
		}
		if before != after {
			t.Fatalf("key %d moved %s → %s though its owner survived", i, before, after)
		}
	}
	// Roughly 1/5 of keys lived on n3 and had to move.
	if moved < keys/10 || moved > keys/2 {
		t.Errorf("%d of %d keys moved; expected roughly %d", moved, keys, keys/5)
	}
}

// TestRingReplicaSetNesting: the n-owner list is a prefix-extension of
// the (n-1)-owner list, so growing N only adds replicas.
func TestRingReplicaSetNesting(t *testing.T) {
	r, err := NewRing([]string{"n1", "n2", "n3", "n4"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		h := testHash(i)
		three := r.Owners(h, 3)
		for k := 1; k < 3; k++ {
			sub := r.Owners(h, k)
			for j := range sub {
				if sub[j] != three[j] {
					t.Fatalf("key %d: Owners(%d)=%v not a prefix of Owners(3)=%v", i, k, sub, three)
				}
			}
		}
	}
}
