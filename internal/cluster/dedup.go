package cluster

import (
	"sync"
	"sync/atomic"
)

// Dedup is the read-through idempotency layer in front of the job
// manager: at most one local execution per spec hash is in flight at a
// time. A duplicate submission while the first runs coalesces onto the
// same job; a duplicate after completion is served from the replicated
// result cache (the caller checks that first and records it with
// Hit). Soundness rests on bit-determinism: the coalesced caller gets
// byte-for-byte the result its own execution would have produced.
type Dedup struct {
	mu       sync.Mutex
	inflight map[Hash]string //replint:guarded gen=gen
	// gen advances on every inflight-set mutation, so snapshots can
	// key their validity on it.
	gen uint64

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
}

// NewDedup returns an empty dedup layer.
func NewDedup() *Dedup {
	return &Dedup{inflight: make(map[Hash]string)}
}

// Claim resolves h to a local job: if an execution is already in
// flight, its job ID is returned with coalesced=true; otherwise submit
// is invoked under the lock (so two racing duplicates cannot both
// execute) and its job ID registered. The caller must pair every
// non-coalesced successful Claim with Done(h) when the job reaches a
// terminal state.
func (d *Dedup) Claim(h Hash, submit func() (string, error)) (id string, coalesced bool, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.inflight[h]; ok {
		d.coalesced.Add(1)
		return id, true, nil
	}
	id, err = submit()
	if err != nil {
		return "", false, err
	}
	d.inflight[h] = id
	d.gen++
	d.misses.Add(1)
	return id, false, nil
}

// Done retires an in-flight hash once its job is terminal.
func (d *Dedup) Done(h Hash) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.inflight, h)
	d.gen++
}

// Lookup returns the in-flight job ID for h, if any.
func (d *Dedup) Lookup(h Hash) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id, ok := d.inflight[h]
	return id, ok
}

// Hit records a result served from the replicated cache.
func (d *Dedup) Hit() { d.hits.Add(1) }

// DedupSnapshot is the layer's counter view for /debug/vars and the
// load generator's hit-rate report.
type DedupSnapshot struct {
	// CacheHits counts submissions answered from the replicated
	// result store without touching the job queue.
	CacheHits int64 `json:"cache_hits"`
	// Executed counts submissions that started a fresh execution.
	Executed int64 `json:"executed"`
	// Coalesced counts submissions attached to an in-flight duplicate.
	Coalesced int64 `json:"coalesced"`
	// Inflight is the current singleflight set size.
	Inflight int `json:"inflight"`
}

// Snapshot returns the current counters.
func (d *Dedup) Snapshot() DedupSnapshot {
	d.mu.Lock()
	n := len(d.inflight)
	d.mu.Unlock()
	return DedupSnapshot{
		CacheHits: d.hits.Load(),
		Executed:  d.misses.Load(),
		Coalesced: d.coalesced.Load(),
		Inflight:  n,
	}
}
