package cluster

import (
	"encoding/json"
	"sort"
	"sync"

	"repro/internal/serve"
)

// Record is one entry in the replicated job/result store, keyed by the
// spec's content hash. Versions are per-record and monotonic: the
// executing node writes version 1 when it accepts a job ("running")
// and version 2 with the result attached when it completes ("done").
// Because the engine is bit-deterministic, two nodes that race to
// execute the same hash write byte-identical results — version
// conflicts between equal versions are benign and resolved
// keep-existing.
type Record struct {
	Hash    Hash        `json:"hash"`
	Version uint64      `json:"version"`
	State   serve.State `json:"state"`
	// Node is the member that executed (or is executing) the job.
	Node string `json:"node,omitempty"`
	// Result is the serve.Result JSON; nil until the job completes.
	Result json.RawMessage `json:"result,omitempty"`
}

// Store is one node's local slice of the replicated store. Put applies
// last-writer-wins on Version (ties keep the existing record) and
// reports whether the record was applied; implementations must be safe
// for concurrent use.
type Store interface {
	Put(rec Record) (applied bool, err error)
	Get(h Hash) (Record, bool, error)
	// Len reports the resident record count; Hashes returns them
	// sorted, for introspection and the smoke tests.
	Len() int
	Hashes() []Hash
	Close() error
}

// MemStore is the in-memory Store.
type MemStore struct {
	mu   sync.RWMutex
	recs map[Hash]Record //replint:guarded gen=epoch
	// epoch advances on every applied mutation; readers that cache
	// derived views key their validity on it.
	epoch uint64
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{recs: make(map[Hash]Record)}
}

// Put applies rec if it is newer than the resident version.
func (s *MemStore) Put(rec Record) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyLocked(rec), nil
}

// applyLocked is the version-gated write shared with the disk store's
// recovery replay. Caller holds mu.
func (s *MemStore) applyLocked(rec Record) bool {
	if old, ok := s.recs[rec.Hash]; ok && old.Version >= rec.Version {
		return false
	}
	s.recs[rec.Hash] = rec
	s.epoch++
	return true
}

// Get returns the resident record for h.
func (s *MemStore) Get(h Hash) (Record, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.recs[h]
	return rec, ok, nil
}

// Len reports the resident record count.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.recs)
}

// Hashes returns the resident hashes in sorted order.
func (s *MemStore) Hashes() []Hash {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Hash, 0, len(s.recs))
	for h := range s.recs {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// Close is a no-op for the in-memory store.
func (s *MemStore) Close() error { return nil }
