// Package cluster turns repld into a multi-node service: a canonical
// content hash over job specs, a consistent-hash ring with virtual
// nodes routing jobs and placing result replicas, a quorum-replicated
// job/result store (W-of-N writes, R-of-N reads with read-repair), a
// read-through dedup layer that coalesces identical in-flight specs
// and serves repeats from the replicated result cache, and the
// internode HTTP endpoints tying a static membership together.
//
// The whole layer leans on one engine property, pinned by the PR 4
// oracle: identical normalized specs produce bit-identical results at
// any parallelism. That makes the spec hash a sound content address —
// a cached result is indistinguishable from a re-execution, so
// deduplication is semantically invisible.
package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"strings"

	"repro/internal/netlist"
	"repro/internal/serve"
)

// Hash is the 256-bit content address of a canonical job spec.
type Hash [32]byte

// String returns the lowercase hex form.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// MarshalText encodes the hash as hex, so Record JSON stays readable.
func (h Hash) MarshalText() ([]byte, error) {
	return []byte(h.String()), nil
}

// UnmarshalText decodes the hex form.
func (h *Hash) UnmarshalText(b []byte) error {
	p, err := ParseHash(string(b))
	if err != nil {
		return err
	}
	*h = p
	return nil
}

// ParseHash decodes the 64-char hex form.
func ParseHash(s string) (Hash, error) {
	var h Hash
	b, err := hex.DecodeString(s)
	if err != nil {
		return h, fmt.Errorf("cluster: bad hash %q: %w", s, err)
	}
	if len(b) != len(h) {
		return h, fmt.Errorf("cluster: bad hash length %d (want %d)", len(b), len(h))
	}
	copy(h[:], b)
	return h, nil
}

// CanonSpec is a job spec reduced to its semantic normal form: every
// default applied, the algorithm in its canonical spelling, and inline
// netlists re-serialized through the parser so whitespace, comments,
// and blank lines cannot perturb the hash. Parallelism and TimeoutMS
// are deliberately absent — they change how fast a job runs, never
// what it computes, so they must not split the cache.
type CanonSpec struct {
	Circuit  string
	Scale    float64
	Netlist  string
	Algo     string
	Seed     int64
	Effort   float64
	MaxIters int
	Route    bool
	// RaceVariants is the raced variant set, comma-joined in canonical
	// flow.EngineAlgorithms order ("" for non-race jobs) — a string
	// rather than a slice so CanonSpec stays comparable. The serve
	// layer's racing rule makes the winner a pure function of the spec,
	// which is exactly what lets raced results share the content-
	// addressed cache: these fields determine the result, so they hash.
	// QoS does not — it only reorders the queue.
	RaceVariants string
	PeriodBound  float64
}

// Canonicalize validates spec and reduces it to canonical form.
func Canonicalize(spec serve.JobSpec) (CanonSpec, error) {
	if err := spec.Validate(); err != nil {
		return CanonSpec{}, err
	}
	n := spec.Normalized()
	c := CanonSpec{
		Circuit:      n.Circuit,
		Scale:        n.Scale,
		Algo:         n.Algo,
		Seed:         n.Seed,
		Effort:       n.Effort,
		MaxIters:     n.MaxIters,
		Route:        n.Route,
		RaceVariants: strings.Join(n.RaceVariants, ","),
		PeriodBound:  n.PeriodBound,
	}
	if n.Netlist != "" {
		nl, err := netlist.Read(strings.NewReader(n.Netlist))
		if err != nil {
			return CanonSpec{}, fmt.Errorf("cluster: netlist: %w", err)
		}
		var buf bytes.Buffer
		if err := nl.Write(&buf); err != nil {
			return CanonSpec{}, fmt.Errorf("cluster: netlist: %w", err)
		}
		c.Netlist = buf.String()
	}
	return c, nil
}

// canonMagic versions the wire encoding. Any change to the field set,
// order, or value encodings MUST bump the version byte — the golden
// hash vectors under testdata pin the current format, so an
// accidental drift fails the suite instead of silently splitting
// every deployed cache. \x02 added the racing fields (RaceVariants,
// PeriodBound); \x01 was the pre-racing field set.
var canonMagic = []byte("replspec\x02")

// Field tags, in mandatory encode order. Tags make truncation and
// reordering detectable when decoding.
const (
	tagCircuit byte = iota + 1
	tagScale
	tagNetlist
	tagAlgo
	tagSeed
	tagEffort
	tagMaxIters
	tagRoute
	tagRaceVariants
	tagPeriodBound
)

// Encode serializes the canonical spec: magic, then every field in tag
// order. Strings are uvarint-length-prefixed, floats are big-endian
// IEEE-754 bit patterns (bit-exact, no formatting round-trip), ints
// are zigzag varints, bools one byte.
func (c CanonSpec) Encode() []byte {
	var b bytes.Buffer
	b.Write(canonMagic)
	putString(&b, tagCircuit, c.Circuit)
	putFloat(&b, tagScale, c.Scale)
	putString(&b, tagNetlist, c.Netlist)
	putString(&b, tagAlgo, c.Algo)
	putInt(&b, tagSeed, c.Seed)
	putFloat(&b, tagEffort, c.Effort)
	putInt(&b, tagMaxIters, int64(c.MaxIters))
	putBool(&b, tagRoute, c.Route)
	putString(&b, tagRaceVariants, c.RaceVariants)
	putFloat(&b, tagPeriodBound, c.PeriodBound)
	return b.Bytes()
}

// DecodeCanonical parses an Encode()d spec, rejecting bad magic, tag
// order violations, truncation, and trailing bytes. It exists for the
// round-trip property the fuzz harness pins: Decode(Encode(c)) == c.
func DecodeCanonical(data []byte) (CanonSpec, error) {
	var c CanonSpec
	if !bytes.HasPrefix(data, canonMagic) {
		return c, fmt.Errorf("cluster: bad canonical-spec magic")
	}
	d := &decoder{buf: data[len(canonMagic):]}
	c.Circuit = d.getString(tagCircuit)
	c.Scale = d.getFloat(tagScale)
	c.Netlist = d.getString(tagNetlist)
	c.Algo = d.getString(tagAlgo)
	c.Seed = d.getInt(tagSeed)
	c.Effort = d.getFloat(tagEffort)
	c.MaxIters = int(d.getInt(tagMaxIters))
	c.Route = d.getBool(tagRoute)
	c.RaceVariants = d.getString(tagRaceVariants)
	c.PeriodBound = d.getFloat(tagPeriodBound)
	if d.err != nil {
		return CanonSpec{}, d.err
	}
	if len(d.buf) != 0 {
		return CanonSpec{}, fmt.Errorf("cluster: %d trailing bytes after canonical spec", len(d.buf))
	}
	return c, nil
}

// HashSpec computes the content address of a job spec: SHA-256 over
// the canonical encoding. Specs that normalize equal hash equal;
// specs that differ in any semantic field do not (modulo SHA-256).
func HashSpec(spec serve.JobSpec) (Hash, error) {
	c, err := Canonicalize(spec)
	if err != nil {
		return Hash{}, err
	}
	return sha256.Sum256(c.Encode()), nil
}

func putString(b *bytes.Buffer, tag byte, s string) {
	b.WriteByte(tag)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(s)))
	b.Write(tmp[:n])
	b.WriteString(s)
}

func putFloat(b *bytes.Buffer, tag byte, f float64) {
	b.WriteByte(tag)
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], math.Float64bits(f))
	b.Write(tmp[:])
}

func putInt(b *bytes.Buffer, tag byte, v int64) {
	b.WriteByte(tag)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	b.Write(tmp[:n])
}

func putBool(b *bytes.Buffer, tag byte, v bool) {
	b.WriteByte(tag)
	if v {
		b.WriteByte(1)
	} else {
		b.WriteByte(0)
	}
}

// decoder consumes the encoded fields, latching the first error so
// call sites stay linear.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) tag(want byte) bool {
	if d.err != nil {
		return false
	}
	if len(d.buf) == 0 || d.buf[0] != want {
		d.err = fmt.Errorf("cluster: canonical spec missing field tag %d", want)
		return false
	}
	d.buf = d.buf[1:]
	return true
}

func (d *decoder) getString(tag byte) string {
	if !d.tag(tag) {
		return ""
	}
	n, used := binary.Uvarint(d.buf)
	if used <= 0 || n > uint64(len(d.buf)-used) {
		d.err = fmt.Errorf("cluster: bad string length for tag %d", tag)
		return ""
	}
	s := string(d.buf[used : used+int(n)])
	d.buf = d.buf[used+int(n):]
	return s
}

func (d *decoder) getFloat(tag byte) float64 {
	if !d.tag(tag) {
		return 0
	}
	if len(d.buf) < 8 {
		d.err = fmt.Errorf("cluster: truncated float for tag %d", tag)
		return 0
	}
	f := math.Float64frombits(binary.BigEndian.Uint64(d.buf[:8]))
	d.buf = d.buf[8:]
	return f
}

func (d *decoder) getInt(tag byte) int64 {
	if !d.tag(tag) {
		return 0
	}
	v, used := binary.Varint(d.buf)
	if used <= 0 {
		d.err = fmt.Errorf("cluster: bad varint for tag %d", tag)
		return 0
	}
	d.buf = d.buf[used:]
	return v
}

func (d *decoder) getBool(tag byte) bool {
	if !d.tag(tag) {
		return false
	}
	if len(d.buf) < 1 || d.buf[0] > 1 {
		d.err = fmt.Errorf("cluster: bad bool for tag %d", tag)
		return false
	}
	v := d.buf[0] == 1
	d.buf = d.buf[1:]
	return v
}
