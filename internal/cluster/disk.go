package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// DiskStore is the durable Store: an append-only log of
// length-prefixed JSON records under an in-memory index. Every applied
// Put appends one entry; OpenDiskStore replays the log, so a node
// restart recovers every result it had replicated. The log is
// compaction-free by design — records are tiny next to the work they
// memoize, and replay applies the same last-writer-wins the live path
// does, so duplicates and superseded versions fall out naturally.
//
// A torn tail (crash mid-append) is detected by the length prefix and
// truncated away on open; everything before it is intact because
// entries are only ever appended.
type DiskStore struct {
	idx *MemStore

	mu sync.Mutex
	f  *os.File
}

// entryHeader is the fixed length prefix: a 4-byte big-endian payload
// size. Payloads are single JSON records.
const entryHeaderLen = 4

// maxEntryLen bounds one log entry (a record holding a result JSON);
// anything larger is treated as corruption rather than allocated.
const maxEntryLen = 64 << 20

// OpenDiskStore opens (creating if needed) the log at path and replays
// it into the index.
func OpenDiskStore(path string) (*DiskStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cluster: open store: %w", err)
	}
	idx := NewMemStore()
	// Replay runs on the bare file before the store is published, so
	// no lock discipline applies yet.
	if err := replayLog(f, idx); err != nil {
		f.Close()
		return nil, err
	}
	return &DiskStore{idx: idx, f: f}, nil
}

// replayLog scans the log from the start, applying every intact entry
// to idx and truncating at the first torn or corrupt one.
func replayLog(f *os.File, idx *MemStore) error {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("cluster: replay: %w", err)
	}
	var off int64
	hdr := make([]byte, entryHeaderLen)
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			// Clean EOF ends the replay; a partial header is a torn
			// append to truncate.
			break
		}
		n := binary.BigEndian.Uint32(hdr)
		if n == 0 || n > maxEntryLen {
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			break
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		idx.mu.Lock()
		idx.applyLocked(rec)
		idx.mu.Unlock()
		off += int64(entryHeaderLen) + int64(n)
	}
	if err := f.Truncate(off); err != nil {
		return fmt.Errorf("cluster: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return fmt.Errorf("cluster: replay: %w", err)
	}
	return nil
}

// Put applies rec to the index and, if applied, appends it to the log.
func (s *DiskStore) Put(rec Record) (bool, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return false, fmt.Errorf("cluster: encode record: %w", err)
	}
	// Serialize append order with apply order under one lock, so the
	// log replays to exactly the index it shadowed.
	s.mu.Lock()
	defer s.mu.Unlock()
	s.idx.mu.Lock()
	applied := s.idx.applyLocked(rec)
	s.idx.mu.Unlock()
	if !applied {
		return false, nil
	}
	buf := make([]byte, entryHeaderLen+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[entryHeaderLen:], payload)
	if _, err := s.f.Write(buf); err != nil {
		return true, fmt.Errorf("cluster: append record: %w", err)
	}
	return true, nil
}

// Get returns the resident record for h.
func (s *DiskStore) Get(h Hash) (Record, bool, error) { return s.idx.Get(h) }

// Len reports the resident record count.
func (s *DiskStore) Len() int { return s.idx.Len() }

// Hashes returns the resident hashes in sorted order.
func (s *DiskStore) Hashes() []Hash { return s.idx.Hashes() }

// Close syncs and closes the log.
func (s *DiskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}
