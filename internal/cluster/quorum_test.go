package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// fakeReplica is an in-process Replica with fault injection.
type fakeReplica struct {
	id    string
	store *MemStore
	// dead simulates an unreachable member.
	dead atomic.Bool
	// slow delays every op (to exercise the W-of-N early return).
	slow time.Duration

	puts atomic.Int64
}

func newFakeReplica(id string) *fakeReplica {
	return &fakeReplica{id: id, store: NewMemStore()}
}

func (f *fakeReplica) ID() string { return f.id }

func (f *fakeReplica) Store(ctx context.Context, rec Record) error {
	if f.dead.Load() {
		return errors.New("connection refused")
	}
	if f.slow > 0 {
		select {
		case <-time.After(f.slow):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	f.puts.Add(1)
	_, err := f.store.Put(rec)
	return err
}

func (f *fakeReplica) Fetch(ctx context.Context, h Hash) (Record, bool, error) {
	if f.dead.Load() {
		return Record{}, false, errors.New("connection refused")
	}
	if f.slow > 0 {
		select {
		case <-time.After(f.slow):
		case <-ctx.Done():
			return Record{}, false, ctx.Err()
		}
	}
	return f.store.Get(h)
}

// newTestQuorum builds a quorum over m fake replicas named n1..nm.
func newTestQuorum(t *testing.T, m int, cfg QuorumConfig) (*Quorum, map[string]*fakeReplica) {
	t.Helper()
	var (
		ids      []string
		replicas []Replica
	)
	fakes := make(map[string]*fakeReplica, m)
	for i := 1; i <= m; i++ {
		id := fmt.Sprintf("n%d", i)
		f := newFakeReplica(id)
		ids = append(ids, id)
		replicas = append(replicas, f)
		fakes[id] = f
	}
	ring, err := NewRing(ids, 16)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQuorum(ring, replicas, cfg, context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return q, fakes
}

func TestQuorumConfigValidate(t *testing.T) {
	bad := []QuorumConfig{
		{N: 0, R: 1, W: 1},
		{N: 4, R: 1, W: 1}, // N > members (3 below)
		{N: 3, R: 0, W: 2},
		{N: 3, R: 1, W: 4},
		{N: 3, R: 1, W: 2}, // R+W == N: split-brain reads allowed
	}
	for _, cfg := range bad {
		if err := cfg.Validate(3); err == nil {
			t.Errorf("Validate(%+v): expected error", cfg)
		}
	}
	if err := (QuorumConfig{N: 3, R: 2, W: 2}).Validate(3); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	for members, want := range map[int]QuorumConfig{
		1: {N: 1, R: 1, W: 1},
		2: {N: 2, R: 1, W: 2},
		3: {N: 3, R: 2, W: 2},
		5: {N: 3, R: 2, W: 2},
	} {
		got := DefaultQuorum(members)
		if got.N != want.N || got.R != want.R || got.W != want.W {
			t.Errorf("DefaultQuorum(%d) = %+v, want %+v", members, got, want)
		}
		if err := got.Validate(members); err != nil {
			t.Errorf("DefaultQuorum(%d) invalid: %v", members, err)
		}
	}
}

// TestQuorumWriteRead: a write followed by a read through different
// quorum slices must return the written record.
func TestQuorumWriteRead(t *testing.T) {
	q, _ := newTestQuorum(t, 3, QuorumConfig{N: 3, R: 2, W: 2})
	ctx := context.Background()
	h := testHash(1)
	if err := q.Write(ctx, doneRec(h, 2, "n1")); err != nil {
		t.Fatal(err)
	}
	rec, found, err := q.Read(ctx, h)
	if err != nil || !found {
		t.Fatalf("Read: found=%v err=%v", found, err)
	}
	if rec.Version != 2 || rec.State != serve.StateDone {
		t.Fatalf("Read returned %+v", rec)
	}
	// A missing key is an agreed miss, not an error.
	if _, found, err := q.Read(ctx, testHash(99)); err != nil || found {
		t.Fatalf("missing key: found=%v err=%v", found, err)
	}
}

// TestQuorumOneDead: with N=3, W=2, R=2, one dead member must not
// block writes or reads — the availability the layer exists for.
func TestQuorumOneDead(t *testing.T) {
	q, fakes := newTestQuorum(t, 3, QuorumConfig{N: 3, R: 2, W: 2, OpTimeout: time.Second})
	ctx := context.Background()
	h := testHash(7)
	fakes["n2"].dead.Store(true)
	if err := q.Write(ctx, doneRec(h, 2, "n1")); err != nil {
		t.Fatalf("write with one dead member: %v", err)
	}
	rec, found, err := q.Read(ctx, h)
	if err != nil || !found || rec.Version != 2 {
		t.Fatalf("read with one dead member: rec=%+v found=%v err=%v", rec, found, err)
	}
}

// TestQuorumTwoDead: losing a write set's worth of members takes the
// quorum down — it must fail loudly, not fabricate agreement.
func TestQuorumTwoDead(t *testing.T) {
	q, fakes := newTestQuorum(t, 3, QuorumConfig{N: 3, R: 2, W: 2, OpTimeout: time.Second})
	ctx := context.Background()
	fakes["n1"].dead.Store(true)
	fakes["n2"].dead.Store(true)
	if err := q.Write(ctx, doneRec(testHash(1), 1, "n3")); err == nil {
		t.Fatal("write with two dead members succeeded")
	}
	if _, _, err := q.Read(ctx, testHash(1)); err == nil {
		t.Fatal("read with two dead members succeeded")
	}
	snap := q.Snapshot()
	if snap.WriteFails == 0 || snap.ReadMisses == 0 {
		t.Errorf("failure counters not advanced: %+v", snap)
	}
}

// TestQuorumMaxVersionWins: when replicas disagree, the read returns
// the newest version regardless of which R answered.
func TestQuorumMaxVersionWins(t *testing.T) {
	q, fakes := newTestQuorum(t, 3, QuorumConfig{N: 3, R: 3, W: 2})
	h := testHash(3)
	owners := q.ring.Owners(h, 3)
	// Hand-plant divergent replicas: the first owner is stale, the
	// second has the newest record, the third is empty.
	if _, err := fakes[owners[0]].store.Put(Record{Hash: h, Version: 1, State: serve.StateRunning, Node: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := fakes[owners[1]].store.Put(doneRec(h, 2, "y")); err != nil {
		t.Fatal(err)
	}
	rec, found, err := q.Read(context.Background(), h)
	if err != nil || !found {
		t.Fatalf("Read: found=%v err=%v", found, err)
	}
	if rec.Version != 2 || rec.Node != "y" {
		t.Fatalf("Read returned %+v, want the v2 record", rec)
	}
}

// TestQuorumReadRepair: a read that observes stale or missing replicas
// pushes the winning record to them in the background.
func TestQuorumReadRepair(t *testing.T) {
	q, fakes := newTestQuorum(t, 3, QuorumConfig{N: 3, R: 3, W: 2})
	h := testHash(4)
	owners := q.ring.Owners(h, 3)
	if _, err := fakes[owners[0]].store.Put(doneRec(h, 2, "y")); err != nil {
		t.Fatal(err)
	}
	if _, found, err := q.Read(context.Background(), h); err != nil || !found {
		t.Fatalf("Read: found=%v err=%v", found, err)
	}
	// Repair runs in background goroutines; poll for convergence.
	deadline := time.Now().Add(2 * time.Second)
	for {
		converged := true
		for _, id := range owners {
			rec, found, _ := fakes[id].store.Get(h)
			if !found || rec.Version != 2 {
				converged = false
			}
		}
		if converged {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("read-repair did not converge the replicas")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if q.Snapshot().ReadRepairs == 0 {
		t.Error("read-repair counter not advanced")
	}
}

// TestQuorumWriteReturnsAtW: the write must return once W fast
// replicas acked, not wait for the slowest.
func TestQuorumWriteReturnsAtW(t *testing.T) {
	q, fakes := newTestQuorum(t, 3, QuorumConfig{N: 3, R: 2, W: 2, OpTimeout: 5 * time.Second})
	h := testHash(5)
	owners := q.ring.Owners(h, 3)
	fakes[owners[2]].slow = 2 * time.Second
	start := time.Now()
	if err := q.Write(context.Background(), doneRec(h, 1, "n1")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("write took %v; should return at W=2 acks without the slow third", elapsed)
	}
}

// TestQuorumConcurrentWrites races many versions of one key from many
// goroutines: the store must end at the maximum version everywhere the
// writes landed, and the race detector must stay quiet.
func TestQuorumConcurrentWrites(t *testing.T) {
	q, _ := newTestQuorum(t, 3, QuorumConfig{N: 3, R: 2, W: 2})
	h := testHash(6)
	var wg sync.WaitGroup
	for v := 1; v <= 20; v++ {
		wg.Add(1)
		go func(v uint64) {
			defer wg.Done()
			_ = q.Write(context.Background(), doneRec(h, v, "n1"))
		}(uint64(v))
	}
	wg.Wait()
	rec, found, err := q.Read(context.Background(), h)
	if err != nil || !found {
		t.Fatalf("Read: found=%v err=%v", found, err)
	}
	if rec.Version != 20 {
		t.Errorf("final version %d, want 20", rec.Version)
	}
}
