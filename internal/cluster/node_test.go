package cluster

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/client"
)

// lateHandler lets an httptest server start before the Node it will
// serve exists: member URLs must be known at Node construction, so the
// servers come up first with an empty handler that is swapped in after.
type lateHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (l *lateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	l.mu.RLock()
	h := l.h
	l.mu.RUnlock()
	if h == nil {
		http.Error(w, "node not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

func (l *lateHandler) set(h http.Handler) {
	l.mu.Lock()
	l.h = h
	l.mu.Unlock()
}

// testCluster is a 3-node in-process repld cluster over httptest.
type testCluster struct {
	ids      []string
	nodes    map[string]*Node
	mgrs     map[string]*serve.Manager
	servers  map[string]*httptest.Server
	handlers map[string]*lateHandler
	urls     map[string]string
}

// startCluster brings up members with the given IDs. stores maps an ID
// to a Store override (nil entries and missing keys get MemStores).
func startCluster(t *testing.T, ids []string, stores map[string]Store) *testCluster {
	t.Helper()
	tc := &testCluster{
		ids:      ids,
		nodes:    map[string]*Node{},
		mgrs:     map[string]*serve.Manager{},
		servers:  map[string]*httptest.Server{},
		handlers: map[string]*lateHandler{},
		urls:     map[string]string{},
	}
	for _, id := range ids {
		lh := &lateHandler{}
		srv := httptest.NewServer(lh)
		tc.handlers[id] = lh
		tc.servers[id] = srv
		tc.urls[id] = srv.URL
	}
	for _, id := range ids {
		peers := map[string]string{}
		for _, other := range ids {
			if other != id {
				peers[other] = tc.urls[other]
			}
		}
		m := serve.NewManager(serve.Config{
			Workers:        2,
			QueueDepth:     32,
			DefaultTimeout: time.Minute,
		})
		n, err := NewNode(m, Config{
			NodeID: id,
			Peers:  peers,
			VNodes: 16,
			Quorum: QuorumConfig{OpTimeout: 5 * time.Second},
			Store:  stores[id],
		})
		if err != nil {
			t.Fatal(err)
		}
		tc.mgrs[id] = m
		tc.nodes[id] = n
		tc.handlers[id].set(n.Handler())
	}
	t.Cleanup(func() { tc.shutdown() })
	return tc
}

func (tc *testCluster) shutdown() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, id := range tc.ids {
		if srv := tc.servers[id]; srv != nil {
			srv.Close()
		}
	}
	for _, id := range tc.ids {
		if m := tc.mgrs[id]; m != nil {
			m.Shutdown(ctx)
		}
		if n := tc.nodes[id]; n != nil {
			n.WaitSettled(5 * time.Second)
			n.Close()
			tc.nodes[id] = nil
		}
	}
}

// kill stops one member's HTTP server and drains its manager,
// simulating a crashed node (its Store stays as-is).
func (tc *testCluster) kill(t *testing.T, id string) {
	t.Helper()
	tc.servers[id].Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	tc.mgrs[id].Shutdown(ctx)
	tc.nodes[id].WaitSettled(5 * time.Second)
	tc.nodes[id].Close()
	tc.nodes[id] = nil
}

func (tc *testCluster) client(id string) *client.Client {
	return client.New(tc.urls[id])
}

// smallSpec is the cheapest real job that exercises the full engine.
func smallSpec() serve.JobSpec {
	return serve.JobSpec{Circuit: "ex5p", Scale: 0.05, MaxIters: 2, Seed: 1}
}

// runOn submits spec via member id and waits for the terminal status.
func (tc *testCluster) runOn(t *testing.T, id string, spec serve.JobSpec) serve.Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	st, err := tc.client(id).Run(ctx, spec, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("run via %s: %v", id, err)
	}
	return st
}

// TestClusterRoutingAndDedup is the core end-to-end flow: the same
// spec submitted through every member must execute once, come back
// bit-identical everywhere, and leave dedup evidence in the counters.
func TestClusterRoutingAndDedup(t *testing.T) {
	tc := startCluster(t, []string{"n1", "n2", "n3"}, nil)
	spec := smallSpec()
	h, err := HashSpec(spec)
	if err != nil {
		t.Fatal(err)
	}

	// First run through n1: executes somewhere (owner side), and its
	// status carries the cluster fields.
	st1 := tc.runOn(t, "n1", spec)
	if st1.State != serve.StateDone || st1.Result == nil {
		t.Fatalf("first run: %+v", st1)
	}
	if st1.SpecHash != h.String() {
		t.Errorf("spec hash %q, want %q", st1.SpecHash, h)
	}
	if st1.Node == "" {
		t.Error("status missing executing node")
	}

	// Wait for the v2 record to replicate, then resubmit via the other
	// members: both must be answered from the cache, terminal at
	// submit time, with the identical result bits.
	waitStore(t, tc, h, 2)
	for _, id := range []string{"n2", "n3"} {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		st, err := tc.client(id).Submit(ctx, spec)
		cancel()
		if err != nil {
			t.Fatalf("resubmit via %s: %v", id, err)
		}
		if st.State != serve.StateDone || st.Source != "cache" || st.Result == nil {
			t.Fatalf("resubmit via %s: state=%s source=%q result=%v", id, st.State, st.Source, st.Result != nil)
		}
		if !strings.HasPrefix(st.ID, "h") {
			t.Errorf("cache hit ID %q not content-addressed", st.ID)
		}
		if math.Float64bits(st.Result.OptimizedPeriod) != math.Float64bits(st1.Result.OptimizedPeriod) ||
			st.Result.Iterations != st1.Result.Iterations {
			t.Errorf("cached result differs from executed result: %+v vs %+v", st.Result, st1.Result)
		}
	}

	hits := int64(0)
	for _, id := range tc.ids {
		hits += tc.nodes[id].Snapshot().Dedup.CacheHits
	}
	if hits < 2 {
		t.Errorf("cluster-wide cache hits = %d, want >= 2", hits)
	}
}

// waitStore polls the cluster until h is resident at version >= v on
// at least a read quorum's worth of members.
func waitStore(t *testing.T, tc *testCluster, h Hash, v uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		holders := 0
		for _, id := range tc.ids {
			n := tc.nodes[id]
			if n == nil {
				continue
			}
			if rec, found, _ := n.store.Get(h); found && rec.Version >= v {
				holders++
			}
		}
		if holders >= 2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("record %s did not replicate to 2 members", h)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterCoalescing: duplicate submissions while the first is in
// flight must attach to the same execution, not start a second one.
func TestClusterCoalescing(t *testing.T) {
	tc := startCluster(t, []string{"n1", "n2", "n3"}, nil)
	spec := smallSpec()
	spec.Seed = 42 // distinct hash from other tests in the run

	const dups = 6
	ids := make([]string, dups)
	var wg sync.WaitGroup
	for i := 0; i < dups; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			entry := tc.ids[i%len(tc.ids)]
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			st, err := tc.client(entry).Run(ctx, spec, 20*time.Millisecond)
			if err != nil {
				t.Errorf("dup %d via %s: %v", i, entry, err)
				return
			}
			if st.State != serve.StateDone {
				t.Errorf("dup %d: state %s (%s)", i, st.State, st.Error)
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()

	var executed, coalesced, hits int64
	for _, id := range tc.ids {
		d := tc.nodes[id].Snapshot().Dedup
		executed += d.Executed
		coalesced += d.Coalesced
		hits += d.CacheHits
	}
	if executed != 1 {
		t.Errorf("%d executions for one spec, want exactly 1 (coalesced=%d hits=%d)", executed, coalesced, hits)
	}
	if coalesced+hits != dups-1 {
		t.Errorf("coalesced=%d + hits=%d, want %d duplicates absorbed", coalesced, hits, dups-1)
	}
}

// TestClusterQualifiedIDRedirect: a job ID qualified with its home
// node must resolve through any member via 307.
func TestClusterQualifiedIDRedirect(t *testing.T) {
	tc := startCluster(t, []string{"n1", "n2", "n3"}, nil)
	spec := smallSpec()
	spec.Seed = 43
	st := tc.runOn(t, "n1", spec)
	if !strings.Contains(st.ID, "@") {
		t.Fatalf("cluster job ID %q not qualified", st.ID)
	}
	for _, id := range tc.ids {
		got, err := tc.client(id).Get(context.Background(), st.ID)
		if err != nil {
			t.Fatalf("get %s via %s: %v", st.ID, id, err)
		}
		if got.ID != st.ID || !got.State.Terminal() {
			t.Errorf("via %s: got ID=%q state=%s", id, got.ID, got.State)
		}
	}
	// Unknown member in the qualifier is a 404, not a hang.
	if _, err := tc.client("n1").Get(context.Background(), "j000001@ghost"); err == nil {
		t.Error("qualified ID with unknown member resolved")
	}
}

// TestClusterHashAddress: "h<hash>" must serve the completed result
// from every member, including ones that never saw the job.
func TestClusterHashAddress(t *testing.T) {
	tc := startCluster(t, []string{"n1", "n2", "n3"}, nil)
	spec := smallSpec()
	spec.Seed = 44
	st := tc.runOn(t, "n2", spec)
	h, err := ParseHash(st.SpecHash)
	if err != nil {
		t.Fatal(err)
	}
	waitStore(t, tc, h, 2)
	for _, id := range tc.ids {
		got, err := tc.client(id).Get(context.Background(), "h"+st.SpecHash)
		if err != nil {
			t.Fatalf("hash get via %s: %v", id, err)
		}
		if got.State != serve.StateDone || got.Result == nil || got.Source != "cache" {
			t.Errorf("via %s: state=%s source=%q", id, got.State, got.Source)
		}
	}
}

// TestClusterNodeDownReads: after one member dies, the quorum must
// keep serving completed results through the survivors.
func TestClusterNodeDownReads(t *testing.T) {
	tc := startCluster(t, []string{"n1", "n2", "n3"}, nil)
	spec := smallSpec()
	spec.Seed = 45
	st := tc.runOn(t, "n1", spec)
	h, err := ParseHash(st.SpecHash)
	if err != nil {
		t.Fatal(err)
	}
	waitStore(t, tc, h, 2)

	tc.kill(t, "n3")

	for _, id := range []string{"n1", "n2"} {
		got, err := tc.client(id).Get(context.Background(), "h"+st.SpecHash)
		if err != nil {
			t.Fatalf("hash get via %s with n3 dead: %v", id, err)
		}
		if got.State != serve.StateDone || got.Result == nil {
			t.Errorf("via %s with n3 dead: state=%s", id, got.State)
		}
		// A fresh duplicate submission is still served from the cache.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		sub, err := tc.client(id).Submit(ctx, spec)
		cancel()
		if err != nil {
			t.Fatalf("resubmit via %s with n3 dead: %v", id, err)
		}
		if sub.State != serve.StateDone || sub.Source != "cache" {
			t.Errorf("resubmit via %s with n3 dead: state=%s source=%q", id, sub.State, sub.Source)
		}
	}
}

// TestClusterNodeDownSubmit: new work keeps flowing with a member
// dead — forwarding falls back across the surviving owners.
func TestClusterNodeDownSubmit(t *testing.T) {
	tc := startCluster(t, []string{"n1", "n2", "n3"}, nil)
	tc.kill(t, "n2")
	for seed := int64(50); seed < 53; seed++ {
		spec := smallSpec()
		spec.Seed = seed
		st := tc.runOn(t, "n1", spec)
		if st.State != serve.StateDone {
			t.Fatalf("seed %d with n2 dead: state=%s (%s)", seed, st.State, st.Error)
		}
	}
}

// TestClusterDiskRecovery: a member restarted onto its log must come
// back holding every result it had replicated.
func TestClusterDiskRecovery(t *testing.T) {
	dir := t.TempDir()
	openStore := func(id string) Store {
		s, err := OpenDiskStore(filepath.Join(dir, id+".results.log"))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	stores := map[string]Store{"n1": openStore("n1"), "n2": openStore("n2"), "n3": openStore("n3")}
	tc := startCluster(t, []string{"n1", "n2", "n3"}, stores)
	spec := smallSpec()
	spec.Seed = 46
	st := tc.runOn(t, "n1", spec)
	h, err := ParseHash(st.SpecHash)
	if err != nil {
		t.Fatal(err)
	}
	waitStore(t, tc, h, 2)
	tc.shutdown()

	// "Restart": reopen each log and check the record survived on at
	// least a write quorum of members.
	holders := 0
	for _, id := range tc.ids {
		s, err := OpenDiskStore(filepath.Join(dir, id+".results.log"))
		if err != nil {
			t.Fatalf("reopen %s: %v", id, err)
		}
		rec, found, err := s.Get(h)
		s.Close()
		if err != nil {
			t.Fatal(err)
		}
		if found && rec.Version >= 2 && rec.State == serve.StateDone {
			var res serve.Result
			if jerr := json.Unmarshal(rec.Result, &res); jerr != nil {
				t.Fatalf("recovered result corrupt on %s: %v", id, jerr)
			}
			if math.Float64bits(res.OptimizedPeriod) != math.Float64bits(st.Result.OptimizedPeriod) {
				t.Errorf("recovered result on %s differs from served result", id)
			}
			holders++
		}
	}
	if holders < 2 {
		t.Errorf("result recovered on %d members, want >= 2", holders)
	}
}

// TestClusterVars: /debug/vars must carry both the single-process
// document and the cluster section.
func TestClusterVars(t *testing.T) {
	tc := startCluster(t, []string{"n1", "n2", "n3"}, nil)
	resp, err := http.Get(tc.urls["n1"] + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Goroutines int `json:"goroutines"`
		Cluster    struct {
			Node    string   `json:"node"`
			Members []string `json:"members"`
			N       int      `json:"replication_factor"`
			Dedup   struct {
				CacheHits int64 `json:"cache_hits"`
			} `json:"dedup"`
		} `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Cluster.Node != "n1" || len(doc.Cluster.Members) != 3 || doc.Cluster.N != 3 {
		t.Errorf("cluster section %+v", doc.Cluster)
	}
	if doc.Goroutines == 0 {
		t.Error("serve vars section missing (goroutines = 0)")
	}
}

// TestClusterInfo: the membership endpoint must agree across members.
func TestClusterInfo(t *testing.T) {
	tc := startCluster(t, []string{"n1", "n2", "n3"}, nil)
	for _, id := range tc.ids {
		resp, err := http.Get(tc.urls[id] + "/v1/cluster/info")
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			Node    string   `json:"node"`
			Members []string `json:"members"`
			N       int      `json:"replication_factor"`
			R       int      `json:"read_quorum"`
			W       int      `json:"write_quorum"`
		}
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if doc.Node != id || len(doc.Members) != 3 || doc.N != 3 || doc.R != 2 || doc.W != 2 {
			t.Errorf("%s info %+v", id, doc)
		}
	}
}

// TestSingleNodeCluster: a cluster of one must behave like a repld
// with a cache — N=R=W=1, no forwarding, dedup still active.
func TestSingleNodeCluster(t *testing.T) {
	tc := startCluster(t, []string{"solo"}, nil)
	spec := smallSpec()
	spec.Seed = 47
	st := tc.runOn(t, "solo", spec)
	if st.State != serve.StateDone {
		t.Fatalf("run: %+v", st)
	}
	h, _ := ParseHash(st.SpecHash)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if rec, found, _ := tc.nodes["solo"].store.Get(h); found && rec.Version >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("record did not land in the solo store")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sub, err := tc.client("solo").Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Source != "cache" {
		t.Errorf("resubmit source %q, want cache", sub.Source)
	}
}

// TestClusterRacedSpecDedup is the racing acceptance path end to end:
// identical raced specs — even with the variant list spelled in a
// different order — canonicalize to the same SpecHash, so duplicates
// are answered from the dedup layer with the identical winner and
// period bits. First-finisher-wins racing would break exactly this
// (see DESIGN.md); the canonical-order decision rule keeps raced
// results safe to cache.
func TestClusterRacedSpecDedup(t *testing.T) {
	tc := startCluster(t, []string{"n1", "n2", "n3"}, nil)
	spec := smallSpec()
	spec.Seed = 61 // distinct hash from other tests in the run
	spec.Algo = serve.AlgoRace
	spec.RaceVariants = []string{"rt", "lex3"}

	st1 := tc.runOn(t, "n1", spec)
	if st1.State != serve.StateDone || st1.Result == nil {
		t.Fatalf("raced run: %+v", st1)
	}
	if st1.Result.RaceWinner == "" {
		t.Fatal("raced result carries no winner")
	}
	h, err := HashSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st1.SpecHash != h.String() {
		t.Errorf("spec hash %q, want %q", st1.SpecHash, h)
	}

	// The same race spelled differently (variant order, case) must hash
	// identically — the hash covers the canonical fold, not the JSON.
	reordered := spec
	reordered.RaceVariants = []string{"LEX3", "rt", "lex3"}
	if h2, err := HashSpec(reordered); err != nil || h2 != h {
		t.Fatalf("reordered variant list changed the hash: %v vs %v (err %v)", h2, h, err)
	}

	// Resubmit through the other members, reordered: every duplicate is
	// served from the dedup layer with the identical decision.
	waitStore(t, tc, h, 2)
	for _, id := range []string{"n2", "n3"} {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		st, err := tc.client(id).Submit(ctx, reordered)
		cancel()
		if err != nil {
			t.Fatalf("raced resubmit via %s: %v", id, err)
		}
		if st.State != serve.StateDone || st.Source != "cache" || st.Result == nil {
			t.Fatalf("raced resubmit via %s: state=%s source=%q", id, st.State, st.Source)
		}
		if st.Result.RaceWinner != st1.Result.RaceWinner {
			t.Errorf("cached winner %q differs from executed winner %q", st.Result.RaceWinner, st1.Result.RaceWinner)
		}
		if math.Float64bits(st.Result.OptimizedPeriod) != math.Float64bits(st1.Result.OptimizedPeriod) {
			t.Errorf("cached raced period differs: %x vs %x",
				math.Float64bits(st.Result.OptimizedPeriod), math.Float64bits(st1.Result.OptimizedPeriod))
		}
	}

	hits := int64(0)
	for _, id := range tc.ids {
		hits += tc.nodes[id].Snapshot().Dedup.CacheHits
	}
	if hits < 2 {
		t.Errorf("raced-spec cache hits = %d, want >= 2", hits)
	}
}
