package circuits

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/netlist"
)

func TestGenerateMatchesSpec(t *testing.T) {
	spec := Spec{Name: "t1", LUTs: 200, Inputs: 10, Outputs: 14, RegisteredFrac: 0.2}
	n, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.NumLUTs(); got != 200 {
		t.Errorf("LUTs = %d, want 200", got)
	}
	if got := n.CountKind(netlist.IPad); got != 10 {
		t.Errorf("inputs = %d, want 10", got)
	}
	if got := n.CountKind(netlist.OPad); got != 14 {
		t.Errorf("outputs = %d, want 14", got)
	}
	// Some LUTs should be registered with frac 0.2.
	reg := 0
	n.Cells(func(c *netlist.Cell) {
		if c.Kind == netlist.LUT && c.Registered {
			reg++
		}
	})
	if reg < 10 || reg > 100 {
		t.Errorf("registered count %d implausible for frac 0.2 of 200", reg)
	}
	if _, err := n.TopoOrder(); err != nil {
		t.Errorf("generated netlist must be acyclic: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := MCNC20[0].Spec(0.1)
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	an := a.SortedCellNames()
	bn := b.SortedCellNames()
	if len(an) != len(bn) {
		t.Fatal("non-deterministic cell count")
	}
	for i := range an {
		if an[i] != bn[i] {
			t.Fatal("non-deterministic cell names")
		}
	}
	// Same connectivity fingerprint.
	fp := func(n *netlist.Netlist) string {
		s := ""
		n.Cells(func(c *netlist.Cell) {
			s += c.Name + ":"
			for _, net := range c.Fanin {
				if net != netlist.None {
					s += n.Cell(n.Net(net).Driver).Name + ","
				}
			}
			s += ";"
		})
		return s
	}
	if fp(a) != fp(b) {
		t.Error("non-deterministic connectivity")
	}
}

func TestGenerateHasReconvergence(t *testing.T) {
	n, err := Generate(MCNC20[0].Spec(0.2))
	if err != nil {
		t.Fatal(err)
	}
	// Reconvergence requires multi-fanout nets; count them.
	multi := 0
	n.Nets(func(net *netlist.Net) {
		if len(net.Sinks) > 1 {
			multi++
		}
	})
	if multi < n.NumNets()/10 {
		t.Errorf("only %d of %d nets have fanout > 1; reconvergence too rare", multi, n.NumNets())
	}
}

func TestGenerateLittleDeadLogic(t *testing.T) {
	n, err := Generate(MCNC20[2].Spec(0.2))
	if err != nil {
		t.Fatal(err)
	}
	dead := 0
	n.Cells(func(c *netlist.Cell) {
		if c.Kind == netlist.LUT && len(n.Net(c.Out).Sinks) == 0 {
			dead++
		}
	})
	if dead > n.NumLUTs()/10 {
		t.Errorf("%d of %d LUTs are dead; generator wastes too much logic", dead, n.NumLUTs())
	}
}

func TestMCNC20TableIStatistics(t *testing.T) {
	if len(MCNC20) != 20 {
		t.Fatalf("suite has %d circuits, want 20", len(MCNC20))
	}
	for _, m := range MCNC20 {
		// Published FPGA size must match MinSquare of the cell counts.
		f := arch.MinSquare(m.LUTs, m.IOs)
		if f.N != m.PaperSize {
			t.Errorf("%s: MinSquare gives %d, Table I says %d", m.Name, f.N, m.PaperSize)
		}
		got := f.Density(m.LUTs)
		if d := got - m.PaperDensity; d > 0.002 || d < -0.002 {
			t.Errorf("%s: density %.3f, Table I says %.3f", m.Name, got, m.PaperDensity)
		}
		if m.PaperWLs < m.PaperWInf {
			t.Errorf("%s: low-stress delay below infinite-resource delay", m.Name)
		}
	}
	// Exactly the documented large circuits.
	wantLarge := map[string]bool{
		"frisc": true, "spla": true, "elliptic": true, "ex1010": true,
		"pdc": true, "s38417": true, "s38584.1": true, "clma": true,
	}
	for _, m := range MCNC20 {
		if m.Large() != wantLarge[m.Name] {
			t.Errorf("%s: Large() = %v, want %v", m.Name, m.Large(), wantLarge[m.Name])
		}
	}
}

func TestMCNCSpecsGenerate(t *testing.T) {
	// Every suite member must generate cleanly at small scale and fit
	// its minimum-square device.
	for _, m := range MCNC20 {
		spec := m.Spec(0.05)
		n, err := Generate(spec)
		if err != nil {
			t.Errorf("%s: %v", m.Name, err)
			continue
		}
		f := arch.MinSquare(n.NumLUTs(), n.NumIOs())
		if f.LogicCapacity() < n.NumLUTs() {
			t.Errorf("%s: does not fit device", m.Name)
		}
	}
}

func TestPaperTables(t *testing.T) {
	if len(PaperTableII) != 20 {
		t.Errorf("Table II rows = %d, want 20", len(PaperTableII))
	}
	for i, r := range PaperTableII {
		if r.Name != MCNC20[i].Name {
			t.Errorf("Table II row %d is %s, Table I row is %s", i, r.Name, MCNC20[i].Name)
		}
	}
	// Paper's headline claims encoded correctly: RT-Embedding average
	// 0.858, Lex-3 best at 0.823, Lex-5 worse than Lex-3.
	var rt, l3, l5 PaperTableIIIRow
	for _, r := range PaperTableIII {
		switch r.Algorithm {
		case "RT-Embedding":
			rt = r
		case "Lex-3":
			l3 = r
		case "Lex-5":
			l5 = r
		}
	}
	if rt.All[0] != 0.858 || l3.All[0] != 0.823 {
		t.Error("Table III reference values corrupted")
	}
	if !(l3.All[0] < l5.All[0]) {
		t.Error("paper shape: Lex-3 beats Lex-5 on average")
	}
	if _, ok := ByName("pdc"); !ok {
		t.Error("ByName failed")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName found a ghost")
	}
}
