package circuits

// This file encodes the published statistics of the paper's benchmark
// suite (Table I) and its result tables (Tables II and III), both as
// the parameters for synthetic circuit generation and as the reference
// values EXPERIMENTS.md compares against.

// MCNCSpec describes one MCNC circuit's published statistics.
type MCNCSpec struct {
	Name       string
	LUTs       int
	IOs        int
	Sequential bool
	// Paper's Table I baseline measurements (timing-driven VPR).
	PaperWInf    float64 // critical path, infinite routing resources [ns]
	PaperWLs     float64 // critical path, low-stress routing [ns]
	PaperWire    int     // routed wire length
	PaperSize    int     // FPGA side (N x N)
	PaperDensity float64
}

// Large reports whether the circuit falls in the paper's "large"
// class (>= 3K cells).
func (m MCNCSpec) Large() bool { return m.LUTs+m.IOs >= 3000 }

// MCNC20 is the paper's benchmark suite in Table I order.
var MCNC20 = []MCNCSpec{
	{"ex5p", 1064, 71, false, 80.59, 81.99, 20020, 33, 0.977},
	{"tseng", 1047, 174, true, 50.54, 53.65, 10495, 33, 0.961},
	{"apex4", 1262, 28, false, 72.12, 75.41, 22332, 36, 0.974},
	{"misex3", 1397, 28, false, 64.44, 65.87, 21784, 38, 0.967},
	{"alu4", 1522, 22, false, 77.20, 81.07, 20796, 40, 0.951},
	{"diffeq", 1497, 103, true, 55.29, 57.49, 15560, 39, 0.984},
	{"dsip", 1370, 426, true, 65.38, 67.21, 17237, 54, 0.470},
	{"seq", 1750, 76, false, 76.93, 77.82, 28493, 42, 0.992},
	{"apex2", 1878, 41, false, 94.61, 95.47, 30998, 44, 0.970},
	{"s298", 1931, 10, true, 124.20, 127.35, 22762, 44, 0.997},
	{"des", 1591, 501, false, 90.44, 91.31, 27415, 63, 0.401},
	{"bigkey", 1707, 426, true, 59.69, 60.65, 21074, 54, 0.585},
	{"frisc", 3556, 136, true, 119.02, 124.61, 61109, 60, 0.988},
	{"spla", 3690, 62, false, 111.03, 113.57, 68308, 61, 0.992},
	{"elliptic", 3604, 245, true, 105.96, 108.50, 47456, 61, 0.969},
	{"ex1010", 4598, 20, false, 184.84, 185.56, 70300, 68, 0.994},
	{"pdc", 4575, 56, false, 167.81, 169.33, 105073, 68, 0.989},
	{"s38417", 6406, 135, true, 97.20, 100.61, 64490, 81, 0.976},
	{"s38584.1", 6447, 342, true, 99.74, 102.10, 58869, 81, 0.983},
	{"clma", 8383, 144, true, 211.78, 217.24, 145551, 92, 0.990},
}

// Spec converts an MCNC entry to a generation spec at the given scale
// (1.0 reproduces the published sizes; smaller scales keep proportions
// for quick benchmarks). I/Os split roughly 40/60 into inputs and
// outputs, the typical profile of the suite.
func (m MCNCSpec) Spec(scale float64) Spec {
	luts := scaleInt(m.LUTs, scale, 8)
	ios := scaleInt(m.IOs, scale, 4)
	inputs := ios * 2 / 5
	if inputs < 2 {
		inputs = 2
	}
	outputs := ios - inputs
	if outputs < 2 {
		outputs = 2
	}
	reg := 0.0
	if m.Sequential {
		reg = 0.15
	}
	return Spec{
		Name:           m.Name,
		LUTs:           luts,
		Inputs:         inputs,
		Outputs:        outputs,
		RegisteredFrac: reg,
	}
}

func scaleInt(v int, scale float64, floor int) int {
	s := int(float64(v) * scale)
	if s < floor {
		return floor
	}
	return s
}

// PaperTableII holds the paper's normalized (to VPR) results for the
// three algorithms of Table II, per circuit: {W∞, W_ls, wire, blocks}.
type PaperTableIIRow struct {
	Name     string
	LocalRep [4]float64
	RTEmbed  [4]float64
	Lex3     [4]float64
}

// PaperTableII is Table II of the paper.
var PaperTableII = []PaperTableIIRow{
	{"ex5p", [4]float64{0.792, 0.806, 1.027, 1.004}, [4]float64{0.764, 0.774, 1.090, 1.011}, [4]float64{0.764, 0.783, 1.110, 1.019}},
	{"tseng", [4]float64{0.987, 0.955, 1.012, 1.004}, [4]float64{0.987, 0.978, 1.060, 1.002}, [4]float64{0.970, 0.933, 1.068, 1.010}},
	{"apex4", [4]float64{0.912, 0.913, 1.042, 1.012}, [4]float64{0.888, 0.913, 1.107, 1.011}, [4]float64{0.854, 0.871, 1.193, 1.024}},
	{"misex3", [4]float64{0.914, 0.937, 1.013, 1.007}, [4]float64{0.852, 0.891, 1.148, 1.010}, [4]float64{0.835, 0.872, 1.273, 1.021}},
	{"alu4", [4]float64{0.987, 0.963, 1.004, 1.000}, [4]float64{0.922, 0.925, 1.053, 1.002}, [4]float64{0.860, 0.945, 1.197, 1.013}},
	{"diffeq", [4]float64{1.004, 1.000, 1.002, 1.003}, [4]float64{0.989, 0.969, 1.026, 1.001}, [4]float64{0.999, 0.990, 1.020, 1.002}},
	{"dsip", [4]float64{0.924, 0.938, 1.024, 1.001}, [4]float64{0.793, 0.804, 1.277, 1.001}, [4]float64{0.731, 0.822, 1.559, 1.001}},
	{"seq", [4]float64{0.939, 0.969, 1.011, 1.002}, [4]float64{0.870, 0.885, 1.048, 1.003}, [4]float64{0.818, 0.859, 1.100, 1.008}},
	{"apex2", [4]float64{1.000, 1.000, 1.000, 1.000}, [4]float64{0.811, 0.838, 1.120, 1.010}, [4]float64{0.755, 0.799, 1.262, 1.016}},
	{"s298", [4]float64{0.937, 0.937, 1.029, 1.003}, [4]float64{0.915, 0.903, 1.034, 1.001}, [4]float64{0.875, 0.899, 1.066, 1.002}},
	{"des", [4]float64{0.898, 0.895, 1.044, 1.003}, [4]float64{0.876, 0.876, 1.039, 1.001}, [4]float64{0.876, 0.886, 1.043, 1.002}},
	{"bigkey", [4]float64{1.000, 1.000, 1.000, 1.000}, [4]float64{0.855, 0.892, 1.190, 1.000}, [4]float64{0.801, 0.901, 1.328, 1.000}},
	{"frisc", [4]float64{1.007, 0.997, 1.007, 1.001}, [4]float64{0.999, 0.983, 1.018, 1.001}, [4]float64{0.958, 0.917, 1.069, 1.007}},
	{"spla", [4]float64{0.874, 0.889, 1.035, 1.005}, [4]float64{0.812, 0.824, 1.108, 1.008}, [4]float64{0.793, 0.829, 1.164, 1.008}},
	{"elliptic", [4]float64{0.926, 0.934, 1.040, 1.003}, [4]float64{0.853, 0.838, 1.030, 1.001}, [4]float64{0.780, 0.792, 1.132, 1.009}},
	{"ex1010", [4]float64{0.861, 0.882, 1.044, 1.003}, [4]float64{0.818, 0.847, 1.148, 1.006}, [4]float64{0.795, 0.821, 1.144, 1.006}},
	{"pdc", [4]float64{0.707, 0.728, 1.031, 1.003}, [4]float64{0.641, 0.707, 1.072, 1.005}, [4]float64{0.624, 0.690, 1.142, 1.009}},
	{"s38417", [4]float64{0.974, 0.961, 1.004, 1.000}, [4]float64{0.930, 0.944, 1.017, 1.000}, [4]float64{0.840, 0.888, 1.069, 1.009}},
	{"s38584.1", [4]float64{0.919, 0.927, 1.002, 1.000}, [4]float64{0.842, 0.839, 1.048, 1.001}, [4]float64{0.819, 0.845, 1.115, 1.000}},
	{"clma", [4]float64{0.926, 0.915, 1.021, 1.003}, [4]float64{0.746, 0.745, 1.053, 1.005}, [4]float64{0.708, 0.707, 1.100, 1.006}},
}

// PaperTableIII holds the paper's Table III averages: for each
// algorithm variant, {W∞, W_ls, wire, blocks} normalized to VPR over
// all, small, and large circuits.
type PaperTableIIIRow struct {
	Algorithm           string
	All, Small, LargeAv [4]float64
}

// PaperTableIII is Table III of the paper.
var PaperTableIII = []PaperTableIIIRow{
	{"RT-Embedding", [4]float64{0.858, 0.869, 1.084, 1.004}, [4]float64{0.877, 0.887, 1.099, 1.004}, [4]float64{0.830, 0.841, 1.062, 1.003}},
	{"Lex-mc", [4]float64{0.841, 0.925, 1.168, 1.013}, [4]float64{0.852, 0.951, 1.197, 1.014}, [4]float64{0.824, 0.886, 1.124, 1.010}},
	{"Lex-2", [4]float64{0.827, 0.869, 1.157, 1.008}, [4]float64{0.850, 0.889, 1.185, 1.010}, [4]float64{0.794, 0.838, 1.114, 1.006}},
	{"Lex-3", [4]float64{0.823, 0.853, 1.158, 1.009}, [4]float64{0.845, 0.880, 1.185, 1.010}, [4]float64{0.790, 0.811, 1.117, 1.007}},
	{"Lex-4", [4]float64{0.825, 0.857, 1.152, 1.008}, [4]float64{0.848, 0.889, 1.175, 1.009}, [4]float64{0.790, 0.809, 1.117, 1.006}},
	{"Lex-5", [4]float64{0.827, 0.869, 1.150, 1.008}, [4]float64{0.849, 0.901, 1.168, 1.008}, [4]float64{0.795, 0.823, 1.124, 1.008}},
}

// ByName finds a suite entry.
func ByName(name string) (MCNCSpec, bool) {
	for _, m := range MCNC20 {
		if m.Name == name {
			return m, true
		}
	}
	return MCNCSpec{}, false
}
