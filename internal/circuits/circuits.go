// Package circuits generates the benchmark workloads. The paper
// evaluates on the 20 MCNC LUT-mapped circuits; those netlists are not
// redistributable, so this package synthesizes stand-ins that match
// the *published* per-circuit statistics of Table I (LUT count, I/O
// count, sequential vs combinational) and the structural properties
// the algorithms exercise: layered logic with strong fanin locality,
// heavy reconvergence, multi-fanout nets, and registered boundaries.
// Generation is deterministic per circuit name.
package circuits

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/netlist"
)

// Spec parameterizes one synthetic circuit.
type Spec struct {
	Name    string
	LUTs    int
	Inputs  int
	Outputs int
	// RegisteredFrac is the fraction of LUTs that latch their output
	// (sequential circuits only).
	RegisteredFrac float64
	// Depth is the number of logic layers.
	Depth int
	// Seed drives generation; Generate derives one from Name when 0.
	Seed int64
}

// Generate builds the synthetic netlist for a spec.
func Generate(spec Spec) (*netlist.Netlist, error) {
	if spec.LUTs < 1 || spec.Inputs < 1 || spec.Outputs < 1 {
		return nil, fmt.Errorf("circuits: spec %q needs at least one LUT, input, and output", spec.Name)
	}
	seed := spec.Seed
	if seed == 0 {
		seed = nameSeed(spec.Name)
	}
	rng := rand.New(rand.NewSource(seed))
	depth := spec.Depth
	if depth <= 0 {
		depth = defaultDepth(spec.LUTs)
	}

	n := netlist.New(spec.Name)
	// Layer 0: input pads.
	layers := make([][]string, depth+1)
	for i := 0; i < spec.Inputs; i++ {
		name := fmt.Sprintf("pi%d", i)
		n.AddCell(name, netlist.IPad, 0)
		layers[0] = append(layers[0], name)
	}
	fanout := map[string]int{}

	// Distribute LUTs over layers 1..depth, slightly heavier in the
	// middle (a common profile of mapped logic).
	counts := layerCounts(spec.LUTs, depth)
	lutIdx := 0
	for l := 1; l <= depth; l++ {
		for c := 0; c < counts[l-1]; c++ {
			name := fmt.Sprintf("n%d", lutIdx)
			lutIdx++
			k := 2 + rng.Intn(3) // 2..4 inputs (K=4 LUTs, not always full)
			cell := n.AddCell(name, netlist.LUT, k)
			if spec.RegisteredFrac > 0 && rng.Float64() < spec.RegisteredFrac {
				cell.Registered = true
			}
			seen := map[string]bool{}
			for p := 0; p < k; p++ {
				sig := pickSignal(rng, layers, l, fanout, seen)
				if sig == "" {
					break
				}
				seen[sig] = true
				n.ConnectByName(cell.ID, p, sig)
				fanout[sig]++
			}
			layers[l] = append(layers[l], name)
		}
	}

	// Outputs: sample late-layer signals, preferring unconsumed ones.
	for i := 0; i < spec.Outputs; i++ {
		name := fmt.Sprintf("po%d", i)
		c := n.AddCell(name, netlist.OPad, 1)
		sig := pickOutput(rng, layers, fanout)
		n.ConnectByName(c.ID, 0, sig)
		fanout[sig]++
	}

	stitchDead(rng, n, layers)

	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("circuits: generated %s invalid: %w", spec.Name, err)
	}
	return n, nil
}

// stitchDead re-points input pins at unconsumed signals so the netlist
// carries little dead logic. Pins are only stolen from drivers with
// fanout >= 2, so no new dead signals appear, and a dead cell is only
// adopted by a cell created after it, which keeps the graph acyclic.
func stitchDead(rng *rand.Rand, n *netlist.Netlist, layers [][]string) {
	// Flatten LUTs in creation order.
	var order []string
	for l := 1; l < len(layers); l++ {
		order = append(order, layers[l]...)
	}
	for i, name := range order {
		id, _ := n.CellByName(name)
		cell := n.Cell(id)
		if len(n.Net(cell.Out).Sinks) > 0 {
			continue
		}
		if !adoptSignal(rng, n, order, i, id) {
			// Last resort: let a random output pad adopt it if its
			// current driver has other fanout.
			adoptByOutput(rng, n, id)
		}
	}
}

func adoptSignal(rng *rand.Rand, n *netlist.Netlist, order []string, i int, dead netlist.CellID) bool {
	deadNet := n.Cell(dead).Out
	if i+1 >= len(order) {
		return false
	}
	for try := 0; try < 48; try++ {
		cname := order[i+1+rng.Intn(len(order)-i-1)]
		cid, _ := n.CellByName(cname)
		c := n.Cell(cid)
		pin := rng.Intn(len(c.Fanin))
		cur := c.Fanin[pin]
		if cur == netlist.None || cur == deadNet {
			continue
		}
		if len(n.Net(cur).Sinks) < 2 {
			continue // stealing would orphan the current driver
		}
		// No duplicate fanin.
		dup := false
		for _, other := range c.Fanin {
			if other == deadNet {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		n.Connect(cid, pin, deadNet)
		return true
	}
	return false
}

func adoptByOutput(rng *rand.Rand, n *netlist.Netlist, dead netlist.CellID) {
	deadNet := n.Cell(dead).Out
	var pads []netlist.CellID
	n.Cells(func(c *netlist.Cell) {
		if c.Kind != netlist.OPad {
			return
		}
		cur := c.Fanin[0]
		if cur != netlist.None && cur != deadNet && len(n.Net(cur).Sinks) >= 2 {
			pads = append(pads, c.ID)
		}
	})
	if len(pads) == 0 {
		return
	}
	n.Connect(pads[rng.Intn(len(pads))], 0, deadNet)
}

// nameSeed derives a stable seed from the circuit name.
func nameSeed(name string) int64 {
	h := int64(1469598103934665603)
	for _, b := range []byte(name) {
		h ^= int64(b)
		h *= 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h | 1
}

func defaultDepth(luts int) int {
	d := 4 + int(math.Round(float64(luts)/700.0))
	if d < 4 {
		d = 4
	}
	if d > 14 {
		d = 14
	}
	return d
}

// layerCounts splits total LUTs over `depth` layers with a mild bulge
// in the middle.
func layerCounts(total, depth int) []int {
	weights := make([]float64, depth)
	sum := 0.0
	for i := range weights {
		x := float64(i) / float64(depth-1+1)
		weights[i] = 0.75 + math.Sin(x*math.Pi)*0.5
		sum += weights[i]
	}
	counts := make([]int, depth)
	used := 0
	for i := range counts {
		counts[i] = int(float64(total) * weights[i] / sum)
		used += counts[i]
	}
	for i := 0; used < total; i = (i + 1) % depth {
		counts[i]++
		used++
	}
	return counts
}

// pickSignal selects a fanin for a layer-l cell: a recent layer with
// geometric bias (strong locality ⇒ reconvergence among neighbors),
// preferring signals that are not yet consumed so dead logic is rare.
func pickSignal(rng *rand.Rand, layers [][]string, l int, fanout map[string]int, seen map[string]bool) string {
	for try := 0; try < 24; try++ {
		back := 1
		for back < l && rng.Float64() < 0.35 {
			back++
		}
		layer := layers[l-back]
		if len(layer) == 0 {
			continue
		}
		sig := layer[rng.Intn(len(layer))]
		if seen[sig] {
			continue
		}
		// Prefer unconsumed signals half the time.
		if fanout[sig] > 0 && try < 8 && rng.Float64() < 0.5 {
			continue
		}
		return sig
	}
	// Fallback: anything unseen from the previous layer.
	for _, sig := range layers[l-1] {
		if !seen[sig] {
			return sig
		}
	}
	return ""
}

func pickOutput(rng *rand.Rand, layers [][]string, fanout map[string]int) string {
	// Walk backward from the last layer preferring unconsumed signals.
	for back := 0; back < len(layers)-1; back++ {
		layer := layers[len(layers)-1-back]
		if len(layer) == 0 {
			continue
		}
		for try := 0; try < 16; try++ {
			sig := layer[rng.Intn(len(layer))]
			if fanout[sig] == 0 {
				return sig
			}
		}
		if back >= 2 {
			return layer[rng.Intn(len(layer))]
		}
	}
	return layers[len(layers)-1][0]
}
