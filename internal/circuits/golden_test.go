package circuits_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/place"
)

// Engine-level golden regression suite: fixed specs through the full
// place → replicate pipeline, with the optimized netlist text and the
// run's numeric fingerprint committed under testdata/. Periods are
// compared as Float64bits — the pipeline is deterministic and every
// run must reproduce the committed bits exactly. Regenerate after an
// intentional behavior change with:
//
//	go test ./internal/circuits/ -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// goldenMeta is the committed numeric fingerprint of one run.
type goldenMeta struct {
	// InitialBits / FinalBits are math.Float64bits of the placed and
	// optimized clock periods, in hex.
	InitialBits string `json:"initial_bits"`
	FinalBits   string `json:"final_bits"`
	Cells       int    `json:"cells"`
	Nets        int    `json:"nets"`
	Replicated  int    `json:"replicated"`
	Unified     int    `json:"unified"`
	// Locs maps each cell to its final slot, in sorted name order on
	// disk (json marshals maps sorted).
	Locs map[string][2]int16 `json:"locs"`
}

func goldenCases() []circuits.Spec {
	return []circuits.Spec{
		{Name: "gold-comb", LUTs: 16, Inputs: 4, Outputs: 3, Seed: 41},
		{Name: "gold-seq", LUTs: 14, Inputs: 4, Outputs: 2, RegisteredFrac: 0.3, Seed: 42},
		{Name: "gold-wide", LUTs: 22, Inputs: 6, Outputs: 4, Depth: 3, Seed: 43},
	}
}

func TestGolden(t *testing.T) {
	for _, spec := range goldenCases() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			nl, err := circuits.Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			po := place.Defaults()
			po.Effort = 1
			po.Seed = spec.Seed
			pl, err := place.Place(nl, arch.New(8), po)
			if err != nil {
				t.Fatal(err)
			}
			cfg := core.Default()
			cfg.MaxIters = 8
			cfg.Patience = 4
			cfg.Parallelism = 1
			dm := arch.DelayModel{SegDelay: 1, LUTDelay: 2, IODelay: 0.5}
			e := core.New(nl, pl, dm, cfg)
			st, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}

			var ckt bytes.Buffer
			if err := e.Netlist.Write(&ckt); err != nil {
				t.Fatal(err)
			}
			meta := goldenMeta{
				InitialBits: fmt.Sprintf("%#016x", math.Float64bits(st.InitialPeriod)),
				FinalBits:   fmt.Sprintf("%#016x", math.Float64bits(st.FinalPeriod)),
				Cells:       e.Netlist.NumCells(),
				Nets:        e.Netlist.NumNets(),
				Replicated:  st.Replicated,
				Unified:     st.Unified,
				Locs:        map[string][2]int16{},
			}
			e.Netlist.Cells(func(c *netlist.Cell) {
				l := e.Placement.Loc(c.ID)
				meta.Locs[c.Name] = [2]int16{l.X, l.Y}
			})
			metaJSON, err := json.MarshalIndent(&meta, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			metaJSON = append(metaJSON, '\n')

			cktPath := filepath.Join("testdata", spec.Name+".ckt")
			jsonPath := filepath.Join("testdata", spec.Name+".json")
			if *update {
				if err := os.WriteFile(cktPath, ckt.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(jsonPath, metaJSON, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			wantCkt, err := os.ReadFile(cktPath)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(ckt.Bytes(), wantCkt) {
				t.Errorf("optimized netlist text diverges from %s:\n--- want\n%s--- got\n%s",
					cktPath, wantCkt, ckt.Bytes())
			}
			wantJSON, err := os.ReadFile(jsonPath)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(metaJSON, wantJSON) {
				t.Errorf("run fingerprint diverges from %s:\n--- want\n%s--- got\n%s",
					jsonPath, wantJSON, metaJSON)
			}
		})
	}
}
