package embed

import "fmt"

// NodeID indexes a node within a Tree.
type NodeID = int32

// Node is one node of the fanin tree to embed.
//
// Leaves (no children) are fixed: they sit at Vertex with signal
// arrival time Arr. Internal nodes are gates to be placed; they carry
// an intrinsic delay and (via Problem.PlaceCost) a per-vertex placement
// cost. The root is an internal node; if its Vertex is >= 0 it is
// constrained to that location (the usual case — the critical sink is
// fixed), while Vertex < 0 leaves the root free, the mode used for FF
// relocation (Section V-D).
type Node struct {
	// Children lists the fanin subtrees (empty for leaves). Arbitrary
	// arity is supported, matching the paper's extension beyond binary
	// trees.
	Children []NodeID
	// Vertex fixes a leaf's (or the root's) location; -1 means free.
	Vertex Vertex
	// Arr is the leaf's signal arrival time (Section II-C: zero for
	// PIs and FFs, STA arrival for reconvergence-terminator leaves).
	Arr float64
	// Intrinsic is the gate delay added when the signal passes through
	// this internal node (or the sink's intrinsic delay at the root).
	Intrinsic float64
	// Critical marks a leaf as the replication tree's critical input
	// (largest downstream delay), the input whose path Lex-mc
	// additionally optimizes. Leaves created as reconvergence
	// terminators are never critical.
	Critical bool
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Tree is a fanin tree (or Leaf-DAG — distinct leaf nodes may refer to
// the same physical cell, which is fine because leaf timing is fixed).
type Tree struct {
	Nodes []Node
	Root  NodeID
}

// NumNodes returns the node count.
func (t *Tree) NumNodes() int { return len(t.Nodes) }

// Validate checks that the tree is well formed: every non-root node has
// exactly one parent, leaves have fixed vertices, and children indices
// are in range. maxVertex is the embedding graph's vertex count.
func (t *Tree) Validate(maxVertex int) error {
	if t.Root < 0 || int(t.Root) >= len(t.Nodes) {
		return fmt.Errorf("embed: root %d out of range", t.Root)
	}
	parents := make([]int, len(t.Nodes))
	for i := range t.Nodes {
		n := &t.Nodes[i]
		for _, c := range n.Children {
			if c < 0 || int(c) >= len(t.Nodes) {
				return fmt.Errorf("embed: node %d child %d out of range", i, c)
			}
			if c == NodeID(i) {
				return fmt.Errorf("embed: node %d is its own child", i)
			}
			parents[c]++
		}
		if n.IsLeaf() {
			if n.Vertex < 0 || int(n.Vertex) >= maxVertex {
				return fmt.Errorf("embed: leaf %d vertex %d out of range", i, n.Vertex)
			}
		} else if n.Vertex >= 0 && int(n.Vertex) >= maxVertex {
			return fmt.Errorf("embed: node %d fixed vertex %d out of range", i, n.Vertex)
		}
	}
	for i, p := range parents {
		if NodeID(i) == t.Root {
			if p != 0 {
				return fmt.Errorf("embed: root has a parent")
			}
			continue
		}
		if p != 1 {
			return fmt.Errorf("embed: node %d has %d parents, want 1", i, p)
		}
	}
	if t.Nodes[t.Root].IsLeaf() {
		return fmt.Errorf("embed: root must be internal")
	}
	// Reachability: every node must be in the root's subtree.
	seen := make([]bool, len(t.Nodes))
	var walk func(NodeID) int
	walk = func(id NodeID) int {
		if seen[id] {
			return 0
		}
		seen[id] = true
		count := 1
		for _, c := range t.Nodes[id].Children {
			count += walk(c)
		}
		return count
	}
	if got := walk(t.Root); got != len(t.Nodes) {
		return fmt.Errorf("embed: %d of %d nodes reachable from root", got, len(t.Nodes))
	}
	return nil
}

// PostOrder returns internal node IDs in bottom-up order (children
// before parents), the processing order of the DP.
func (t *Tree) PostOrder() []NodeID {
	order := make([]NodeID, 0, len(t.Nodes))
	var walk func(NodeID)
	walk = func(id NodeID) {
		for _, c := range t.Nodes[id].Children {
			walk(c)
		}
		order = append(order, id)
	}
	walk(t.Root)
	return order
}
