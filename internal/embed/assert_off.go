//go:build !replassert

package embed

// assertEnabled is false in the default build: every assertion call
// below is an empty function guarded by a constant-false branch, so
// the compiler removes the checks and their argument plumbing from the
// hot paths entirely. Build with -tags replassert to turn them on.
const assertEnabled = false

func assertStaircase([]stairStep)                      {}
func assertNonDominatedCombos(Mode, []combo)           {}
func assertWaveOrder(Mode, *Sig, bool, *Sig)           {}
func assertNoReverseDomination(Mode, []solution, *Sig) {}
func assertFrontier(Mode, []FrontierSol, bool)         {}
