//go:build replassert

package embed

import "fmt"

// assertEnabled gates the replassert runtime invariant layer. Built
// with -tags replassert, the solver re-checks its structural invariants
// at the points the determinism contract leans on; the default build
// compiles the checks away entirely (see assert_off.go).
const assertEnabled = true

// assertStaircase panics unless the 2-D prune staircase is monotone:
// d0 non-decreasing and peak strictly decreasing. Every dominance query
// in pruneCombos2D is a binary search over this shape; a broken
// staircase silently keeps dominated combos or drops optimal ones.
func assertStaircase(stair []stairStep) {
	for i := 1; i < len(stair); i++ {
		if stair[i].d0 < stair[i-1].d0 || stair[i].peak >= stair[i-1].peak {
			panic(fmt.Sprintf(
				"replassert: prune staircase not monotone at step %d: (d0=%g,peak=%d) -> (d0=%g,peak=%d)",
				i, stair[i-1].d0, stair[i-1].peak, stair[i].d0, stair[i].peak))
		}
	}
}

// assertNonDominatedCombos panics unless a pruned combo set is a full
// antichain of the dominance order. Both directions hold because the
// prune sweep sorts by totalLess, a refinement of dominance: a
// dominating combo always sorts first, so the forward scan removes
// every dominated entry — including the smaller-Peak/Branch cases the
// old heap-order sort could leave pointing backwards.
func assertNonDominatedCombos(m Mode, combos []combo) {
	for i := range combos {
		for j := range combos {
			if i != j && dominates(m, &combos[i].sig, &combos[j].sig) {
				panic(fmt.Sprintf(
					"replassert: pruned combo %d dominates combo %d — prune sweep kept dead weight", i, j))
			}
		}
	}
}

// assertWaveOrder panics when a wavefront pop goes backwards in the
// heap order. GenDijkstra's finality argument — a popped candidate not
// dominated by the accepted set is itself final — holds only while
// pops are non-decreasing under heapLess.
func assertWaveOrder(m Mode, prev *Sig, havePrev bool, cur *Sig) {
	if havePrev && heapLess(m, cur, prev) {
		panic(fmt.Sprintf(
			"replassert: wavefront pop order regressed: cost %g after cost %g", cur.Cost, prev.Cost))
	}
}

// assertNoReverseDomination panics if a newly accepted solution
// precedes an already-accepted one at the same vertex in the heap
// order. Pop order makes this impossible: acceptance happens in pop
// order, so every earlier accept is heap-<= the new one. (Full
// dominance can still point backwards — Peak is a dominance dimension
// the heap order deliberately ignores — so only the heap-ordered
// dimensions are asserted.)
func assertNoReverseDomination(m Mode, list []solution, s *Sig) {
	for i := range list {
		if heapLess(m, s, &list[i].sig) {
			panic(fmt.Sprintf(
				"replassert: accepted solution precedes already-accepted entry %d in heap order", i))
		}
	}
}

// assertFrontier panics unless the root frontier is sorted by the heap
// order and — for a fixed root, where all solutions share one vertex —
// pairwise non-dominated. A free root keeps per-vertex curves, so
// cross-vertex domination is legitimate there and only the sort is
// checked.
func assertFrontier(m Mode, frontier []FrontierSol, crossVertex bool) {
	for i := 1; i < len(frontier); i++ {
		if heapLess(m, &frontier[i].Sig, &frontier[i-1].Sig) {
			panic(fmt.Sprintf("replassert: frontier not sorted at index %d", i))
		}
	}
	if crossVertex {
		return
	}
	for i := range frontier {
		for j := range frontier {
			if i != j && dominates(m, &frontier[i].Sig, &frontier[j].Sig) {
				panic(fmt.Sprintf(
					"replassert: frontier entry %d dominates entry %d", i, j))
			}
		}
	}
}
