package embed

// waveHeap is a typed binary min-heap over queueItems ordered by
// heapLess. Unlike container/heap it never boxes items through
// interface values, so the wavefront's push/pop churn stays off the
// garbage collector; the backing slice lives in the solver scratch and
// is reused across Solve calls.
type waveHeap struct {
	mode  Mode
	items []queueItem
}

// init establishes the heap invariant over the seed items in place
// (bottom-up heapify, O(n)).
func (h *waveHeap) init() {
	n := len(h.items)
	for i := n/2 - 1; i >= 0; i-- {
		h.siftDown(i, n)
	}
}

func (h *waveHeap) push(it queueItem) {
	h.items = append(h.items, it)
	h.siftUp(len(h.items) - 1)
}

func (h *waveHeap) pop() queueItem {
	n := len(h.items) - 1
	h.items[0], h.items[n] = h.items[n], h.items[0]
	h.siftDown(0, n)
	it := h.items[n]
	h.items = h.items[:n]
	return it
}

func (h *waveHeap) less(i, j int) bool {
	return heapLess(h.mode, &h.items[i].sol.sig, &h.items[j].sol.sig)
}

func (h *waveHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *waveHeap) siftDown(i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			return
		}
		h.items[i], h.items[m] = h.items[m], h.items[i]
		i = m
	}
}
