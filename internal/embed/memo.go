// Embedding-frontier memoization: deterministic 128-bit fingerprints
// over an embedding problem's canonical encoding, and a bounded FIFO
// cache of solved Results keyed by them. The engine uses these to
// reuse whole solution frontiers across iterations whose extraction
// produced a bitwise-identical problem (same subtree structure, window
// geometry, and cost inputs) — the dominant regime in a converged
// run's patience tail, where the dynamic program is pure recomputation.
//
// The hash is an FNV-1a/128 variant evaluated inline (not hash/maphash, whose
// per-process seed would make hit patterns nondeterministic): equal
// inputs always produce equal fingerprints in every run, so a cached
// Result is only ever returned for a problem whose canonical encoding
// matches byte for byte, and the solver's determinism guarantees the
// cached frontier is Float64bits-identical to a fresh solve.
package embed

import (
	"math"
	"math/bits"
)

// FNV-1a 128-bit parameters.
const (
	fnvOffsetHi = 0x6c62272e07bb0142
	fnvOffsetLo = 0x62b821756295c58d
	fnvPrimeHi  = 0x0000000001000000
	fnvPrimeLo  = 0x000000000000013B
)

// Fingerprint is a 128-bit content hash of an embedding problem. Two
// independent 64-bit halves make accidental collisions implausible
// over an engine run's lifetime (< 2^20 problems).
type Fingerprint struct {
	Hi, Lo uint64
}

// Hasher accumulates a Fingerprint over bytes and 64-bit words. The
// zero value is not ready; use NewHasher.
type Hasher struct {
	hi, lo uint64
}

// NewHasher returns a hasher at the FNV-1a offset basis.
func NewHasher() Hasher {
	return Hasher{hi: fnvOffsetHi, lo: fnvOffsetLo}
}

// Byte folds one byte into the hash.
func (h *Hasher) Byte(b byte) {
	h.lo ^= uint64(b)
	carry, lo := bits.Mul64(h.lo, fnvPrimeLo)
	h.hi = h.hi*fnvPrimeLo + h.lo*fnvPrimeHi + carry
	h.lo = lo
}

// U64 folds a uint64 as a single word-wide FNV-1a step (xor, then one
// 128-bit multiply by the prime). Word folding is 8x cheaper than
// byte-at-a-time and fingerprints are hashed from scratch on every
// engine iteration, so this is on the iteration critical path; the
// diffusion loss versus byte folding is irrelevant for content
// addressing of non-adversarial inputs.
func (h *Hasher) U64(v uint64) {
	h.lo ^= v
	carry, lo := bits.Mul64(h.lo, fnvPrimeLo)
	h.hi = h.hi*fnvPrimeLo + h.lo*fnvPrimeHi + carry
	h.lo = lo
}

// Int folds an int.
func (h *Hasher) Int(v int) { h.U64(uint64(int64(v))) }

// F64 folds a float64 by its exact bit pattern.
func (h *Hasher) F64(v float64) { h.U64(math.Float64bits(v)) }

// Bool folds a bool.
func (h *Hasher) Bool(b bool) {
	if b {
		h.Byte(1)
	} else {
		h.Byte(0)
	}
}

// Sum returns the accumulated fingerprint.
func (h *Hasher) Sum() Fingerprint { return Fingerprint{Hi: h.hi, Lo: h.lo} }

// Fingerprint folds the graph's canonical encoding: grid metadata,
// per-vertex blocked flags, and every edge with its exact cost and
// delay bits, in insertion order.
func (g *Graph) Fingerprint(h *Hasher) {
	h.Int(g.w)
	h.Int(g.h)
	h.Int(g.x0)
	h.Int(g.y0)
	h.Int(len(g.adj))
	for v := range g.adj {
		h.Bool(g.blocked[v])
		h.Int(len(g.adj[v]))
		for i := range g.adj[v] {
			e := &g.adj[v][i]
			h.U64(uint64(uint32(e.To)))
			h.F64(e.Cost)
			h.F64(e.Delay)
		}
	}
}

// Fingerprint folds the tree's canonical encoding: every node's
// children, pinned vertex, arrival and intrinsic bits, and critical
// flag.
func (t *Tree) Fingerprint(h *Hasher) {
	h.Int(len(t.Nodes))
	h.U64(uint64(uint32(t.Root)))
	for i := range t.Nodes {
		n := &t.Nodes[i]
		h.Int(len(n.Children))
		for _, c := range n.Children {
			h.U64(uint64(uint32(c)))
		}
		h.U64(uint64(uint32(n.Vertex)))
		h.F64(n.Arr)
		h.F64(n.Intrinsic)
		h.Bool(n.Critical)
	}
}

// Fingerprint folds the signature mode.
func (m Mode) Fingerprint(h *Hasher) {
	h.Int(m.LexDepth)
	h.Bool(m.MC)
	h.Byte(byte(m.Delay))
	h.F64(m.GateR)
	h.Bool(m.OverlapControl)
}

// CacheStats counts cache outcomes.
type CacheStats struct {
	Hits, Misses int
}

// Cache is a bounded map from problem fingerprints to solved Results.
// Eviction is FIFO over insertion order — deterministic, never driven
// by map iteration — so identical runs hit and miss identically.
// Cached Results keep their solution arenas alive, so a hit costs two
// map operations and no allocation: this is the storage that keeps the
// steady-state engine loop off the allocator.
//
// Admission is two-touch: a Result is only retained once its
// fingerprint has been offered before (the first offer records the
// fingerprint in a bounded doorkeeper set and retains nothing). During
// active optimization every productive iteration mutates the netlist,
// so fingerprints never repeat and the cache stays empty — retaining
// frontiers there buys no hits while their pointer-rich solution
// arrays inflate every GC cycle. In the converged patience tail the
// same (ε, sink) extraction states recur, the second sighting admits,
// and every sighting after that is a hit. Not safe for concurrent use;
// each engine owns one.
type Cache struct {
	cap int
	// The retained-Result map and its FIFO order are generation-guarded:
	// external snapshots (diagnostics, tests asserting deterministic hit
	// sequences) are only comparable while gen is unchanged, so every
	// mutation of either must advance gen before returning (replint's
	// stalegen rule enforces this). The doorkeeper (seen/seenQ) is not
	// guarded: it never affects what a Get returns, only future
	// admission, so its churn is invisible to readers.
	m     map[Fingerprint]*Result //replint:guarded gen=gen
	fifo  []Fingerprint           //replint:guarded gen=gen
	seen  map[Fingerprint]struct{}
	seenQ []Fingerprint
	gen   uint64
	Stats CacheStats
}

// defaultCacheCap bounds retained frontiers. A converged engine cycles
// through a handful of distinct (ε, sink) extraction states; 16 covers
// the cycle while bounding retained frontier memory.
const defaultCacheCap = 16

// seenFactor sizes the doorkeeper relative to the Result capacity: it
// only stores 16-byte fingerprints, so remembering a longer history
// than we can retain Results for is nearly free and lets recurrence be
// detected across a cycle longer than the cache itself.
const seenFactor = 8

// NewCache returns a cache holding up to capacity Results; 0 selects
// the default.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = defaultCacheCap
	}
	return &Cache{
		cap:  capacity,
		m:    make(map[Fingerprint]*Result, capacity),
		seen: make(map[Fingerprint]struct{}, capacity*seenFactor),
	}
}

// Get returns the cached Result for k, counting the outcome.
func (c *Cache) Get(k Fingerprint) (*Result, bool) {
	r, ok := c.m[k]
	if ok {
		c.Stats.Hits++
	} else {
		c.Stats.Misses++
	}
	return r, ok
}

// Put offers r under k. A first-time fingerprint is only recorded in
// the doorkeeper; a repeat admits the Result, evicting the oldest
// retained entry at capacity.
func (c *Cache) Put(k Fingerprint, r *Result) {
	if _, ok := c.m[k]; ok {
		return // first insertion wins; the Result is identical anyway
	}
	if _, ok := c.seen[k]; !ok {
		if len(c.seenQ) >= c.cap*seenFactor {
			delete(c.seen, c.seenQ[0])
			c.seenQ = c.seenQ[1:]
		}
		c.seen[k] = struct{}{}
		c.seenQ = append(c.seenQ, k)
		return
	}
	if len(c.m) >= c.cap {
		victim := c.fifo[0]
		c.fifo = c.fifo[1:]
		delete(c.m, victim)
	}
	c.m[k] = r
	c.fifo = append(c.fifo, k)
	c.gen++
}

/// Gen returns the cache's content generation: it advances on every
// admission or reset, so two observations with equal Gen saw an
// identical retained set.
func (c *Cache) Gen() uint64 { return c.gen }

// Reset drops every entry and the doorkeeper history (used when the
// engine invalidates all incremental state).
func (c *Cache) Reset() {
	clear(c.m)
	c.fifo = c.fifo[:0]
	clear(c.seen)
	c.seenQ = c.seenQ[:0]
	c.gen++
}
