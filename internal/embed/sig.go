package embed

import "math"

// MaxLex bounds the number of lexicographically ordered arrival values
// a signature can carry. The paper implements Lex-N generally but notes
// that "for values of N above 5, we cannot claim modest runtime
// overhead any longer"; we allow up to 5.
const MaxLex = 5

// DelayKind selects how wire delay accumulates along a route.
type DelayKind uint8

const (
	// LinearDelay: each edge contributes its fixed Delay (Section II-B,
	// the buffered-switch FPGA model).
	LinearDelay DelayKind = iota
	// QuadraticDelay: a route of total length L (sum of edge Delay
	// values) contributes L². This is the unbuffered-wire model of the
	// paper's worked example ("let the wire delay be quadratically
	// proportional to the length"). The signature tracks the stem
	// length since the driving gate in R.
	QuadraticDelay
	// ElmoreDelay: edges carry unit resistance/capacitance scaled by
	// Delay; a segment contributes c·(R + r/2) where R is the upstream
	// resistance tracked in the signature (Section II-D). Gates reset
	// R to their output resistance.
	ElmoreDelay
)

// Mode configures the signature semantics for one embedding run.
type Mode struct {
	// LexDepth is the number of lexicographically ordered arrival
	// values (1 = the plain 2-D cost/max-arrival signature; 2..5 =
	// Lex-2..Lex-5 of Section VI-A).
	LexDepth int
	// MC enables the Lex-mc (cost, t, tc, w) signature: tc is the
	// arrival from the replication tree's critical input and w the
	// critical-branch weight, excluded from the dominance test.
	MC bool
	// Delay selects the wire-delay model.
	Delay DelayKind
	// GateR is the gate output resistance for ElmoreDelay (join resets
	// the signature's R to this value).
	GateR float64
	// OverlapControl enables the branching-bit scheme of Section II-A:
	// joins are forbidden when they would co-locate more tree gates at
	// one vertex than its remaining capacity.
	OverlapControl bool
}

func (m Mode) lexDepth() int {
	if m.LexDepth <= 0 {
		return 1
	}
	if m.LexDepth > MaxLex {
		return MaxLex
	}
	return m.LexDepth
}

// loadDependent reports whether the signature must track R.
func (m Mode) loadDependent() bool { return m.Delay != LinearDelay }

// Sig is a candidate-solution signature. Depending on Mode, some fields
// are unused (and held at neutral values so comparisons stay valid).
type Sig struct {
	// Cost is the embedding cost accumulated so far (wire + placement).
	Cost float64
	// D holds the lexicographic arrival vector: D[0] is the max
	// arrival t, D[1] the subcritical t2, etc. Unused tail entries are
	// -Inf ("no second path").
	D [MaxLex]float64
	// TC is the Lex-mc critical-input arrival; W its weight.
	TC float64
	W  int32
	// R is the stem length (QuadraticDelay) or upstream resistance
	// (ElmoreDelay) at the solution's frontier vertex.
	R float64
	// Branch counts tree gates placed exactly at this solution's
	// vertex (1 after a join, 0 after any wavefront augmentation).
	Branch int32
	// Peak is the maximum number of tree gates co-located on any one
	// vertex anywhere in the solution. It participates in dominance so
	// that, all else equal, overlap-free embeddings win ties — the
	// legalizer then has nothing to undo.
	Peak int32
}

// negInf fills unused lexicographic slots.
var negInf = math.Inf(-1)

// newLeafSig builds the initial signature for a leaf with the given
// arrival time.
func newLeafSig(m Mode, arr float64, critical bool) Sig {
	s := Sig{Branch: 1, Peak: 1}
	s.D[0] = arr
	for i := 1; i < MaxLex; i++ {
		s.D[i] = negInf
	}
	if m.MC && critical {
		s.TC = arr
		s.W = 1
	}
	return s
}

// lexLess compares arrival vectors lexicographically over the first
// depth entries. Both vectors come from identical operation sequences,
// so exact ties are the intended total-order semantics.
//
//replint:floatcmp-helper
func lexLess(a, b *Sig, depth int) bool {
	for i := 0; i < depth; i++ {
		if a.D[i] != b.D[i] {
			return a.D[i] < b.D[i]
		}
	}
	return false
}

func lexLE(a, b *Sig, depth int) bool { return !lexLess(b, a, depth) }

// dominates reports whether a dominates b under the mode's partial
// order: superior or equal in every dimension that participates in the
// dominance test. Delay values are compared as one lexicographic value
// (valid because t >= t2 >= ... and, for MC, t >= tc — the paper's
// observation enabling the 2-D dominance test for all Lex variants).
// Load-dependent modes additionally require a's R to be no worse.
//
// Branch participates unconditionally, not just under overlap control:
// Peak is a dominance dimension in every mode, and a solution's future
// Peak depends on its Branch (finishJoin grows Branch and folds it into
// Peak). Pruning b against an equal-Peak a with a larger Branch would
// discard exactly the candidate whose descendants have the smaller
// Peak — an unsound prune the brute-force oracle catches on small
// instances. Requiring a.Branch <= b.Branch restores the monotonicity
// the dominance argument needs (and subsumes the overlap-control check,
// which additionally filters joins by capacity in joinSpan).
func dominates(m Mode, a, b *Sig) bool {
	if a.Cost > b.Cost {
		return false
	}
	if !lexLE(a, b, m.lexDepth()) {
		return false
	}
	if m.MC && a.TC > b.TC {
		return false
	}
	if m.loadDependent() && a.R > b.R {
		return false
	}
	if a.Branch > b.Branch {
		return false
	}
	if a.Peak > b.Peak {
		return false
	}
	return true
}

// heapLess orders signatures for the wavefront priority queue:
// non-decreasing cost, ties broken by lexicographic arrival. With this
// order every pop is final exactly as in scalar Dijkstra: anything
// popped later at the same vertex has no smaller cost and no smaller
// arrival, so the dominance test against already-accepted solutions is
// sound. Exact cost ties fall through to the lexicographic tie-break:
// bitwise equality is the deterministic heap-order semantics.
//
//replint:floatcmp-helper
func heapLess(m Mode, a, b *Sig) bool {
	if a.Cost != b.Cost {
		return a.Cost < b.Cost
	}
	return lexLess(a, b, m.lexDepth())
}

// totalLess is a total order refining the dominance partial order: if a
// dominates b and a != b in some dominance dimension, then
// totalLess(a, b). The prune sweeps sort by it so a forward-only
// dominance scan yields the canonical minimal antichain — under the
// weaker heapLess sort, a kept entry could be dominated by a later one
// whenever cost and arrival tie but Branch, Peak, TC or R differ. The
// dominance dimensions come first (in the dominates order), then the
// remaining fields as deterministic tie-breaks so equal-key sorting
// never depends on input order.
//
//replint:floatcmp-helper
func totalLess(m Mode, a, b *Sig) bool {
	if a.Cost != b.Cost {
		return a.Cost < b.Cost
	}
	depth := m.lexDepth()
	for i := 0; i < depth; i++ {
		if a.D[i] != b.D[i] {
			return a.D[i] < b.D[i]
		}
	}
	if m.MC && a.TC != b.TC {
		return a.TC < b.TC
	}
	if m.loadDependent() && a.R != b.R {
		return a.R < b.R
	}
	if a.Branch != b.Branch {
		return a.Branch < b.Branch
	}
	if a.Peak != b.Peak {
		return a.Peak < b.Peak
	}
	// Non-dominance tie-breaks: never reached for signatures of one
	// tree node in practice (W is constant per node, TC/R are neutral
	// outside their modes), but kept so the order is total regardless.
	if a.TC != b.TC {
		return a.TC < b.TC
	}
	if a.R != b.R {
		return a.R < b.R
	}
	if a.W != b.W {
		return a.W < b.W
	}
	return false
}

// augment extends a signature across an edge: wire cost adds to Cost,
// wire delay adds to every live arrival component (every recorded path
// passes through this wire). The result is a non-branching solution.
func augment(m Mode, s Sig, e Edge) Sig {
	out := s
	out.Cost += e.Cost
	out.Branch = 0
	var wireDelay float64
	switch m.Delay {
	case LinearDelay:
		wireDelay = e.Delay
	case QuadraticDelay:
		// Route delay is (stem length)²; extending the stem by e.Delay
		// adds the difference of squares.
		l0 := s.R
		l1 := l0 + e.Delay
		wireDelay = l1*l1 - l0*l0
		out.R = l1
	case ElmoreDelay:
		// d = c·(R + r/2) with r = c = e.Delay per unit length.
		wireDelay = e.Delay * (s.R + e.Delay/2)
		out.R = s.R + e.Delay
	}
	depth := m.lexDepth()
	for i := 0; i < depth; i++ {
		if out.D[i] != negInf {
			out.D[i] += wireDelay
		}
	}
	if m.MC && out.W > 0 {
		out.TC += wireDelay
	}
	return out
}

// merge combines two child signatures meeting at a branching vertex
// (no placement cost or gate delay yet — see finishJoin). Costs add;
// the arrival vector becomes the top LexDepth values of the multiset
// union of both vectors, which implements the paper's join equations
//
//	t  = max(t_1 .. t_k)
//	t2 = max({t_i} ∪ {t2_i} \ {t}) ...
//
// associatively, so k-ary joins fold pairwise. TC and W accumulate per
// the Lex-mc join; Branch counts co-located gates.
func merge(m Mode, a, b *Sig) Sig {
	out := Sig{
		Cost:   a.Cost + b.Cost,
		TC:     a.TC + b.TC,
		W:      a.W + b.W,
		Branch: a.Branch + b.Branch,
		Peak:   maxI32(a.Peak, b.Peak),
	}
	depth := m.lexDepth()
	// Descending-order merge of two sorted (descending) vectors,
	// keeping the top `depth` entries.
	i, j := 0, 0
	for k := 0; k < MaxLex; k++ {
		switch {
		case k >= depth:
			out.D[k] = negInf
		case i < depth && (j >= depth || a.D[i] >= b.D[j]):
			out.D[k] = a.D[i]
			i++
		case j < depth:
			out.D[k] = b.D[j]
			j++
		default:
			out.D[k] = negInf
		}
	}
	return out
}

// finishJoin applies the per-vertex terms of the join: placement cost
// p_ij and the gate's intrinsic delay (added to every live arrival
// component, and to TC when the critical branch passes through). For
// load-dependent modes the gate drives the upstream wire, so R resets.
// Branch grows by one: the parent gate itself now sits at this vertex.
// (We track gate *counts* rather than the paper's single bit — a
// strictly more precise version of the same scheme.)
func finishJoin(m Mode, s Sig, placeCost, intrinsic float64) Sig {
	out := s
	out.Cost += placeCost
	out.Branch = s.Branch + 1
	if out.Branch > out.Peak {
		out.Peak = out.Branch
	}
	depth := m.lexDepth()
	for i := 0; i < depth; i++ {
		if out.D[i] != negInf {
			out.D[i] += intrinsic
		}
	}
	if m.MC && out.W > 0 {
		out.TC += intrinsic
	}
	switch m.Delay {
	case QuadraticDelay:
		out.R = 0
	case ElmoreDelay:
		out.R = m.GateR
	}
	return out
}

func maxI32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
