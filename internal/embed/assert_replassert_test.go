//go:build replassert

package embed

import "testing"

// These tests run only under -tags replassert and prove the invariant
// layer actually fires: each one feeds an assertion a state that
// violates its invariant and demands a panic. The inverse direction —
// that clean solver runs never trip the assertions — is covered by the
// regular test suite, which executes the asserting build of the same
// code paths.

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic on an invariant violation", name)
		}
	}()
	fn()
}

func TestAssertEnabledUnderTag(t *testing.T) {
	if !assertEnabled {
		t.Fatal("assertEnabled must be true under -tags replassert")
	}
}

func TestAssertStaircaseFires(t *testing.T) {
	// d0 decreasing between steps: not a staircase.
	mustPanic(t, "assertStaircase", func() {
		assertStaircase([]stairStep{{d0: 2, peak: 5}, {d0: 1, peak: 3}})
	})
	// peak not strictly decreasing.
	mustPanic(t, "assertStaircase", func() {
		assertStaircase([]stairStep{{d0: 1, peak: 3}, {d0: 2, peak: 3}})
	})
	// A well-formed staircase passes.
	assertStaircase([]stairStep{{d0: 1, peak: 5}, {d0: 2, peak: 3}, {d0: 4, peak: 1}})
}

func TestAssertNonDominatedCombosFires(t *testing.T) {
	m := Mode{}
	better := newLeafSig(m, 1, false) // cost 0, arrival 1
	worse := better
	worse.Cost = 3 // dominated: same arrival, higher cost
	mustPanic(t, "assertNonDominatedCombos", func() {
		assertNonDominatedCombos(m, []combo{{sig: better}, {sig: worse}})
	})
	faster := newLeafSig(m, 0.5, false)
	faster.Cost = 3 // incomparable with better: cheaper vs faster
	assertNonDominatedCombos(m, []combo{{sig: better}, {sig: faster}})
}

func TestAssertWaveOrderFires(t *testing.T) {
	m := Mode{}
	cheap := newLeafSig(m, 1, false)
	costly := cheap
	costly.Cost = 2
	mustPanic(t, "assertWaveOrder", func() {
		assertWaveOrder(m, &costly, true, &cheap) // pop order regressed
	})
	assertWaveOrder(m, &cheap, true, &costly)
	assertWaveOrder(m, &costly, false, &cheap) // first pop: no predecessor
}

func TestAssertNoReverseDominationFires(t *testing.T) {
	m := Mode{}
	accepted := newLeafSig(m, 2, false)
	accepted.Cost = 2
	dominating := newLeafSig(m, 1, false) // cheaper and faster
	mustPanic(t, "assertNoReverseDomination", func() {
		assertNoReverseDomination(m, []solution{{sig: accepted}}, &dominating)
	})
	incomparable := newLeafSig(m, 1, false)
	incomparable.Cost = 5
	assertNoReverseDomination(m, []solution{{sig: accepted}}, &incomparable)
}

func TestAssertFrontierFires(t *testing.T) {
	m := Mode{}
	cheap := newLeafSig(m, 1, false)
	costly := cheap
	costly.Cost = 2
	mustPanic(t, "assertFrontier", func() {
		assertFrontier(m, []FrontierSol{{Sig: costly}, {Sig: cheap}}, false) // unsorted
	})
	dominated := costly
	dominated.D[0] = 3
	mustPanic(t, "assertFrontier", func() {
		assertFrontier(m, []FrontierSol{{Sig: cheap}, {Sig: dominated}}, false)
	})
	// Cross-vertex frontiers tolerate domination between vertices but
	// still demand the sort.
	assertFrontier(m, []FrontierSol{{Sig: cheap}, {Sig: dominated}}, true)
}

// TestSolveUnderAssertions runs the solver end to end — serial and
// parallel — with every invariant armed, on the same randomized
// instances the determinism suite uses.
func TestSolveUnderAssertions(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		p := randomProblem(seed, 4, 4, 3, Mode{}, false)
		solveBoth(t, "replassert-random", p, 2, 4)
	}
}
