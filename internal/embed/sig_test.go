package embed

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randSig builds a structurally valid signature: D sorted descending
// with -Inf padding, as the DP maintains.
func randSig(rng *rand.Rand, depth int) Sig {
	s := Sig{Cost: float64(rng.Intn(40)), Branch: int32(rng.Intn(3)), Peak: 1}
	if s.Branch > s.Peak {
		s.Peak = s.Branch
	}
	live := 1 + rng.Intn(depth)
	vals := make([]float64, live)
	for i := range vals {
		vals[i] = float64(rng.Intn(30))
	}
	// Sort descending.
	for i := 0; i < live; i++ {
		for j := i + 1; j < live; j++ {
			if vals[j] > vals[i] {
				vals[i], vals[j] = vals[j], vals[i]
			}
		}
	}
	for i := 0; i < MaxLex; i++ {
		if i < live {
			s.D[i] = vals[i]
		} else {
			s.D[i] = negInf
		}
	}
	return s
}

// TestMergeProperties checks the join algebra with randomized inputs:
// commutativity, associativity (the property that justifies pairwise
// k-ary folding), and the defining top-k-of-multiset semantics.
func TestMergeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, depth := range []int{1, 2, 3, 5} {
		m := Mode{LexDepth: depth}
		for trial := 0; trial < 500; trial++ {
			a, b, c := randSig(rng, depth), randSig(rng, depth), randSig(rng, depth)
			ab := merge(m, &a, &b)
			ba := merge(m, &b, &a)
			if ab != ba {
				t.Fatalf("depth %d: merge not commutative:\n%v\n%v", depth, ab, ba)
			}
			abc1 := merge(m, &ab, &c)
			bc := merge(m, &b, &c)
			abc2 := merge(m, &a, &bc)
			if abc1 != abc2 {
				t.Fatalf("depth %d: merge not associative:\n%v\n%v", depth, abc1, abc2)
			}
			// Top-k-of-multiset semantics.
			var pool []float64
			for i := 0; i < depth; i++ {
				for _, s := range []*Sig{&a, &b} {
					if s.D[i] != negInf {
						pool = append(pool, s.D[i])
					}
				}
			}
			for i := 0; i < len(pool); i++ {
				for j := i + 1; j < len(pool); j++ {
					if pool[j] > pool[i] {
						pool[i], pool[j] = pool[j], pool[i]
					}
				}
			}
			for i := 0; i < depth; i++ {
				want := negInf
				if i < len(pool) {
					want = pool[i]
				}
				if ab.D[i] != want {
					t.Fatalf("depth %d: merged D[%d] = %v, want %v (pool %v)",
						depth, i, ab.D[i], want, pool)
				}
			}
		}
	}
}

// TestMergeMonotoneInvariant: merged vectors stay sorted descending —
// the invariant the lexicographic dominance test relies on.
func TestMergeMonotoneInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := Mode{LexDepth: 4}
	for trial := 0; trial < 1000; trial++ {
		a, b := randSig(rng, 4), randSig(rng, 4)
		out := merge(m, &a, &b)
		for i := 1; i < 4; i++ {
			if out.D[i] > out.D[i-1] {
				t.Fatalf("merged vector not descending: %v", out.D)
			}
		}
	}
}

// TestDominancePartialOrder: dominance is reflexive and transitive,
// and strictly antisymmetric modulo equality — the properties that
// make pruning sound.
func TestDominancePartialOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, m := range []Mode{
		{LexDepth: 1},
		{LexDepth: 3},
		{LexDepth: 1, MC: true},
		{LexDepth: 1, Delay: ElmoreDelay},
		{LexDepth: 2, OverlapControl: true},
	} {
		sigs := make([]Sig, 60)
		for i := range sigs {
			sigs[i] = randSig(rng, max(1, m.LexDepth))
			sigs[i].TC = float64(rng.Intn(10))
			sigs[i].R = float64(rng.Intn(5))
		}
		for i := range sigs {
			if !dominates(m, &sigs[i], &sigs[i]) {
				t.Fatalf("mode %+v: dominance not reflexive", m)
			}
		}
		for i := range sigs {
			for j := range sigs {
				for k := range sigs {
					if dominates(m, &sigs[i], &sigs[j]) && dominates(m, &sigs[j], &sigs[k]) &&
						!dominates(m, &sigs[i], &sigs[k]) {
						t.Fatalf("mode %+v: dominance not transitive", m)
					}
				}
			}
		}
	}
}

// TestAugmentMonotone: augmenting across an edge never decreases cost
// or any live arrival component, for every delay model.
func TestAugmentMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, m := range []Mode{
		{LexDepth: 3},
		{LexDepth: 2, Delay: QuadraticDelay},
		{LexDepth: 1, Delay: ElmoreDelay, GateR: 1},
	} {
		for trial := 0; trial < 500; trial++ {
			s := randSig(rng, max(1, m.LexDepth))
			s.R = float64(rng.Intn(4))
			e := Edge{Cost: 0.5 + rng.Float64(), Delay: rng.Float64() * 3}
			out := augment(m, s, e)
			if out.Cost <= s.Cost {
				t.Fatalf("augment did not increase cost")
			}
			for i := 0; i < m.lexDepth(); i++ {
				if s.D[i] != negInf && out.D[i] < s.D[i] {
					t.Fatalf("augment decreased D[%d]: %v -> %v", i, s.D[i], out.D[i])
				}
			}
			if out.Branch != 0 {
				t.Fatal("augmented solutions must be non-branching")
			}
			if out.Peak < s.Peak {
				t.Fatal("augment must preserve peak stacking")
			}
		}
	}
}

// TestQuadraticAugmentExact: extending a stem accumulates exactly the
// square of the total length, independent of segmentation.
func TestQuadraticAugmentExact(t *testing.T) {
	m := Mode{LexDepth: 1, Delay: QuadraticDelay}
	segment := func(lengths []float64) float64 {
		s := newLeafSig(m, 0, false)
		for _, l := range lengths {
			s = augment(m, s, Edge{Cost: 1, Delay: l})
		}
		return s.D[0]
	}
	f := func(a, b, c uint8) bool {
		la, lb, lc := float64(a%8), float64(b%8), float64(c%8)
		total := la + lb + lc
		got := segment([]float64{la, lb, lc})
		return math.Abs(got-total*total) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFinishJoinGateDelay: the gate delay lands on every live
// component and the load-model state resets.
func TestFinishJoinGateDelay(t *testing.T) {
	m := Mode{LexDepth: 3, Delay: ElmoreDelay, GateR: 2.5}
	s := randSig(rand.New(rand.NewSource(5)), 3)
	s.R = 7
	out := finishJoin(m, s, 1.5, 2)
	if out.Cost != s.Cost+1.5 {
		t.Errorf("cost = %v, want %v", out.Cost, s.Cost+1.5)
	}
	for i := 0; i < 3; i++ {
		if s.D[i] == negInf {
			continue
		}
		if out.D[i] != s.D[i]+2 {
			t.Errorf("D[%d] = %v, want %v", i, out.D[i], s.D[i]+2)
		}
	}
	if out.R != 2.5 {
		t.Errorf("R after gate = %v, want GateR 2.5", out.R)
	}
	if out.Branch != s.Branch+1 {
		t.Errorf("Branch = %d, want %d", out.Branch, s.Branch+1)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
