// Package embed implements optimal timing-driven fanin tree embedding
// (Section II of the paper): given a fanin tree, fixed leaf and root
// locations, leaf arrival times, and an embedding graph describing the
// placement target, it places the internal tree nodes so as to derive
// the full non-dominated tradeoff between embedding cost and root
// arrival time.
//
// The algorithm is the dynamic program of Fig. 6: candidate solutions,
// represented by signatures, are combined bottom-up at every graph
// vertex (Join) and propagated through the graph by a generalized
// multi-source Dijkstra wavefront expansion (GenDijkstra) that discards
// dominated candidates. Signature variants implemented:
//
//   - 2-D (cost, t) for the linear delay model (Section II-C),
//   - Lex-2 … Lex-5 lexicographic subcritical arrival vectors
//     (Section VI-A),
//   - Lex-mc (cost, t, tc, w) critical-input optimization (Section VI-A),
//   - 3-D (cost, r, t) for quadratic/Elmore-style load-dependent wire
//     delay (Section II-D), exercised by the paper's worked example.
package embed

import (
	"fmt"

	"repro/internal/arch"
)

// Vertex indexes a location in the embedding graph.
type Vertex = int32

// Edge is a directed embedding-graph edge with wire cost and
// propagation delay (for the linear model) or wire resistance/
// capacitance length (for the load-dependent models, where Delay is
// interpreted as wire length per Section II-D).
type Edge struct {
	To    Vertex
	Cost  float64
	Delay float64
}

// Graph is the embedding target. It is deliberately generic — "the
// ability to work on arbitrary graphs implicitly allows support of
// nonuniform target technology structures" — with helpers for the
// common case of a uniform FPGA grid window.
type Graph struct {
	adj     [][]Edge
	blocked []bool
	// cost indexes directed edge costs for O(1) lookup (route
	// reconstruction walks edges by endpoint pair; scanning Adj per
	// hop is wasted work on wide windows). Parallel edges keep the
	// first inserted cost, matching the Adj scan order.
	cost map[uint64]float64

	// Grid metadata (zero for non-grid graphs): the graph covers FPGA
	// locations [x0, x0+w) x [y0, y0+h).
	w, h, x0, y0 int
}

// NewGraph returns an empty graph with n vertices and no edges.
func NewGraph(n int) *Graph {
	return &Graph{adj: make([][]Edge, n), blocked: make([]bool, n), cost: make(map[uint64]float64, 4*n)}
}

// edgeKey packs a directed edge into a cost-index key.
func edgeKey(from, to Vertex) uint64 {
	return uint64(uint32(from))<<32 | uint64(uint32(to))
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.adj) }

// AddEdge inserts a directed edge. Wire costs must be positive for the
// wavefront expansion to terminate.
func (g *Graph) AddEdge(from, to Vertex, cost, delay float64) {
	if cost <= 0 {
		panic(fmt.Sprintf("embed: edge cost must be positive, got %v", cost))
	}
	g.adj[from] = append(g.adj[from], Edge{To: to, Cost: cost, Delay: delay})
	if g.cost == nil {
		g.cost = make(map[uint64]float64)
	}
	//replint:ignore floatcmp -- zero is the absent-entry sentinel; edge costs are positive and stored, never accumulated
	if k := edgeKey(from, to); g.cost[k] == 0 {
		g.cost[k] = cost // edge costs are positive, so 0 means absent
	}
}

// EdgeCost returns the wire cost of the directed edge (from, to) in
// O(1), or false when the graph has no such edge.
func (g *Graph) EdgeCost(from, to Vertex) (float64, bool) {
	c, ok := g.cost[edgeKey(from, to)]
	return c, ok
}

// AddBiEdge inserts edges in both directions.
func (g *Graph) AddBiEdge(a, b Vertex, cost, delay float64) {
	g.AddEdge(a, b, cost, delay)
	g.AddEdge(b, a, cost, delay)
}

// Block marks a vertex unusable for placement and propagation, the
// mechanism behind "a designer may wish that certain areas of the
// design remain undisturbed" (Section II-A).
func (g *Graph) Block(v Vertex) { g.blocked[v] = true }

// Blocked reports whether v is blocked.
func (g *Graph) Blocked(v Vertex) bool { return g.blocked[v] }

// Adj returns the out-edges of v (shared slice; do not mutate).
func (g *Graph) Adj(v Vertex) []Edge { return g.adj[v] }

// GridSpec describes a rectangular window of FPGA slots to build an
// embedding graph over.
type GridSpec struct {
	// X0, Y0, W, H delimit the window in FPGA coordinates.
	X0, Y0, W, H int
	// WireCost is the cost per unit of wire (one grid edge).
	WireCost float64
	// WireDelay is the propagation delay per unit of wire.
	WireDelay float64
}

// NewGrid builds a 4-connected grid graph over the window.
func NewGrid(spec GridSpec) *Graph {
	if spec.W <= 0 || spec.H <= 0 {
		panic("embed: grid window must be non-empty")
	}
	g := NewGraph(spec.W * spec.H)
	g.w, g.h, g.x0, g.y0 = spec.W, spec.H, spec.X0, spec.Y0
	for y := 0; y < spec.H; y++ {
		for x := 0; x < spec.W; x++ {
			v := Vertex(y*spec.W + x)
			if x+1 < spec.W {
				g.AddBiEdge(v, v+1, spec.WireCost, spec.WireDelay)
			}
			if y+1 < spec.H {
				g.AddBiEdge(v, v+Vertex(spec.W), spec.WireCost, spec.WireDelay)
			}
		}
	}
	return g
}

// NewGraphGrid returns a grid-addressed graph with no edges; callers
// add edges with custom per-edge costs (used for congestion-biased
// windows).
func NewGraphGrid(x0, y0, w, h int) *Graph {
	g := NewGraph(w * h)
	g.w, g.h, g.x0, g.y0 = w, h, x0, y0
	return g
}

// IsGrid reports whether the graph was built by NewGrid.
func (g *Graph) IsGrid() bool { return g.w > 0 }

// VertexAt maps an FPGA location to its grid vertex, or -1 if the
// location lies outside the window.
func (g *Graph) VertexAt(l arch.Loc) Vertex {
	if !g.IsGrid() {
		panic("embed: VertexAt on non-grid graph")
	}
	x, y := int(l.X)-g.x0, int(l.Y)-g.y0
	if x < 0 || y < 0 || x >= g.w || y >= g.h {
		return -1
	}
	return Vertex(y*g.w + x)
}

// LocOf maps a grid vertex back to its FPGA location.
func (g *Graph) LocOf(v Vertex) arch.Loc {
	if !g.IsGrid() {
		panic("embed: LocOf on non-grid graph")
	}
	return arch.Loc{
		X: int16(g.x0 + int(v)%g.w),
		Y: int16(g.y0 + int(v)/g.w),
	}
}

// ClampToWindow returns the location moved to the nearest point inside
// the grid window; external leaves outside the window attach at the
// boundary with their wire delay to the boundary pre-charged by the
// caller.
func (g *Graph) ClampToWindow(l arch.Loc) arch.Loc {
	x, y := int(l.X), int(l.Y)
	if x < g.x0 {
		x = g.x0
	}
	if x >= g.x0+g.w {
		x = g.x0 + g.w - 1
	}
	if y < g.y0 {
		y = g.y0
	}
	if y >= g.y0+g.h {
		y = g.y0 + g.h - 1
	}
	return arch.Loc{X: int16(x), Y: int16(y)}
}
