package embed

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Problem is one fanin-tree embedding instance.
type Problem struct {
	G    *Graph
	T    *Tree
	Mode Mode
	// PlaceCost returns p_ij, the cost of placing internal tree node i
	// at vertex j (Section II-A). nil means zero everywhere. Return
	// +Inf to forbid a location for one node.
	PlaceCost func(node NodeID, v Vertex) float64
	// Capacity returns the remaining capacity of the slot at v for the
	// overlap-control scheme; nil means capacity 1 everywhere. Only
	// consulted when Mode.OverlapControl is set.
	Capacity func(v Vertex) int
	// MaxPerVertex caps the solution list kept per (node, vertex);
	// 0 keeps every non-dominated solution (exact). When the cap is
	// hit, a new solution is accepted only if it improves the current
	// fastest arrival by more than DelayQuantum — a documented
	// approximation for very large instances.
	MaxPerVertex int
	DelayQuantum float64
}

type solKind uint8

const (
	kindLeaf solKind = iota
	kindJoin
	kindAugment
)

// solution couples a signature with the provenance needed to
// reconstruct the embedding top-down after a solution is chosen.
type solution struct {
	sig  Sig
	kind solKind
	// kindAugment: predecessor solution.
	prevVertex Vertex
	prevIdx    int32
	// kindJoin: children solution indices at the same vertex, stored
	// in nodeSols.joinPool[joinRef : joinRef+len(children)].
	joinRef int32
}

// nodeSols holds the accepted non-dominated solution sets A[i][j] for
// one tree node, plus the flattened child references of its join
// solutions.
type nodeSols struct {
	at       [][]solution
	joinPool []int32
}

// Result is the outcome of Solve: the non-dominated cost/arrival
// tradeoff at the root ("Frontier"), plus enough state to extract any
// chosen solution's full embedding.
type Result struct {
	p        *Problem
	sols     []nodeSols
	Frontier []FrontierSol
}

// FrontierSol is one point on the root tradeoff curve.
type FrontierSol struct {
	Sig Sig
	// Vertex is where the root was placed (always the fixed root
	// vertex unless the root was free, the FF-relocation mode).
	Vertex Vertex
	idx    int32
}

// Solve runs the embedding DP of Fig. 6 and returns the root tradeoff
// curve sorted by increasing cost.
func (p *Problem) Solve() (*Result, error) {
	if err := p.T.Validate(p.G.NumVertices()); err != nil {
		return nil, err
	}
	r := &Result{p: p, sols: make([]nodeSols, len(p.T.Nodes))}
	for i := range r.sols {
		r.sols[i].at = make([][]solution, p.G.NumVertices())
	}
	order := p.T.PostOrder()
	for _, id := range order {
		n := &p.T.Nodes[id]
		if n.IsLeaf() {
			// ComputeInitial (line b2) + wavefront expansion.
			init := solution{sig: newLeafSig(p.Mode, n.Arr, n.Critical), kind: kindLeaf}
			r.runWavefront(id, []queueItem{{sol: init, vertex: n.Vertex}})
			continue
		}
		if id == p.T.Root {
			break // handled below: the root is not propagated onward
		}
		seeds := r.joinAt(id, nil)
		r.runWavefront(id, seeds)
	}

	// Root: join only (A[t][root] = A^b[t][root] — the sink consumes
	// the signal; no onward propagation). A fixed root joins at its
	// vertex only; a free root joins everywhere and the frontier spans
	// all vertices.
	rootNode := &p.T.Nodes[p.T.Root]
	var only []Vertex
	if rootNode.Vertex >= 0 {
		only = []Vertex{rootNode.Vertex}
	}
	seeds := r.joinAt(p.T.Root, only)
	ns := &r.sols[p.T.Root]
	for _, it := range seeds {
		ns.at[it.vertex] = append(ns.at[it.vertex], it.sol)
	}
	// Collect the global non-dominated frontier.
	var all []FrontierSol
	for v := range ns.at {
		for i := range ns.at[v] {
			all = append(all, FrontierSol{Sig: ns.at[v][i].sig, Vertex: Vertex(v), idx: int32(i)})
		}
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("embed: no feasible embedding (root unreachable from leaves)")
	}
	sort.Slice(all, func(i, j int) bool {
		if heapLess(p.Mode, &all[i].Sig, &all[j].Sig) {
			return true
		}
		if heapLess(p.Mode, &all[j].Sig, &all[i].Sig) {
			return false
		}
		// Ties: prefer solutions with less gate stacking, so that
		// selection never picks an overlap the legalizer must undo.
		return all[i].Sig.Peak < all[j].Sig.Peak
	})
	if rootNode.Vertex < 0 {
		// Free root (FF relocation, Section V-D): the caller needs
		// "the tradeoff curve composed of solutions at all possible
		// locations for the critical sink" — cross-vertex dominance
		// would discard exactly the alternative locations the
		// relocation heuristic must weigh against the sink's outgoing
		// paths, so every (already per-vertex non-dominated) solution
		// is kept.
		r.Frontier = all
		return r, nil
	}
	for _, f := range all {
		dominated := false
		for i := range r.Frontier {
			if dominates(p.Mode, &r.Frontier[i].Sig, &f.Sig) {
				dominated = true
				break
			}
		}
		if !dominated {
			r.Frontier = append(r.Frontier, f)
		}
	}
	return r, nil
}

// joinAt computes the branching solutions A^b[id][j] (JoinTree line c2)
// for every vertex (or just the listed ones) by folding the children's
// accepted sets pairwise, then applying placement cost and gate delay.
func (r *Result) joinAt(id NodeID, only []Vertex) []queueItem {
	p := r.p
	n := &p.T.Nodes[id]
	ns := &r.sols[id]
	var seeds []queueItem

	vertices := only
	if vertices == nil {
		vertices = make([]Vertex, 0, p.G.NumVertices())
		for v := 0; v < p.G.NumVertices(); v++ {
			vertices = append(vertices, Vertex(v))
		}
	}

	for _, v := range vertices {
		if p.G.Blocked(v) {
			continue
		}
		pc := 0.0
		if p.PlaceCost != nil {
			pc = p.PlaceCost(id, v)
		}
		if math.IsInf(pc, 1) {
			continue
		}
		// Fold children: cross-product with dominance pruning at each
		// step (the paper's 2-D join is a linear merge; the pairwise
		// cross-product with pruning is the general form that also
		// covers the Lex and load-dependent signatures).
		var combos []combo
		feasible := true
		for ci, c := range n.Children {
			childSols := r.sols[c].at[v]
			if len(childSols) == 0 {
				feasible = false
				break
			}
			if ci == 0 {
				combos = make([]combo, 0, len(childSols))
				for i := range childSols {
					combos = append(combos, combo{sig: childSols[i].sig, idx: []int32{int32(i)}})
				}
				continue
			}
			next := make([]combo, 0, len(combos))
			for _, cb := range combos {
				for i := range childSols {
					m := merge(p.Mode, &cb.sig, &childSols[i].sig)
					idx := make([]int32, len(cb.idx)+1)
					copy(idx, cb.idx)
					idx[len(cb.idx)] = int32(i)
					next = append(next, combo{sig: m, idx: idx})
				}
			}
			combos = pruneCombos(p.Mode, next)
		}
		if !feasible {
			continue
		}
		for _, cb := range combos {
			sig := finishJoin(p.Mode, cb.sig, pc, n.Intrinsic)
			if p.Mode.OverlapControl {
				cap := 1
				if p.Capacity != nil {
					cap = p.Capacity(v)
				}
				if int(sig.Branch) > cap {
					continue // would overfill the slot (Section II-A)
				}
			}
			ref := int32(len(ns.joinPool))
			ns.joinPool = append(ns.joinPool, cb.idx...)
			seeds = append(seeds, queueItem{
				sol:    solution{sig: sig, kind: kindJoin, joinRef: ref},
				vertex: v,
			})
		}
	}
	return seeds
}

// combo is a partial join: a merged signature plus the child solution
// indices that produced it.
type combo struct {
	sig Sig
	idx []int32
}

// pruneCombos removes dominated combinations.
func pruneCombos(m Mode, in []combo) []combo {
	sort.Slice(in, func(i, j int) bool { return heapLess(m, &in[i].sig, &in[j].sig) })
	out := in[:0]
	for i := range in {
		dominated := false
		for j := range out {
			if dominates(m, &out[j].sig, &in[i].sig) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, in[i])
		}
	}
	return out
}

// queueItem is a pending candidate in the wavefront priority queue.
type queueItem struct {
	sol    solution
	vertex Vertex
}

type wavefrontQueue struct {
	mode  Mode
	items []queueItem
}

func (q *wavefrontQueue) Len() int { return len(q.items) }
func (q *wavefrontQueue) Less(i, j int) bool {
	return heapLess(q.mode, &q.items[i].sol.sig, &q.items[j].sol.sig)
}
func (q *wavefrontQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *wavefrontQueue) Push(x any)    { q.items = append(q.items, x.(queueItem)) }
func (q *wavefrontQueue) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	q.items = old[:n-1]
	return it
}

// runWavefront is GenDijkstra (Fig. 6): a multi-source generalized
// Dijkstra expansion seeded with the node's branching solutions.
// Because items pop in non-decreasing (cost, arrival) order, a popped
// candidate not dominated by the already-accepted set at its vertex is
// itself non-dominated and final.
func (r *Result) runWavefront(id NodeID, seeds []queueItem) {
	p := r.p
	ns := &r.sols[id]
	q := &wavefrontQueue{mode: p.Mode, items: seeds}
	heap.Init(q)
	for q.Len() > 0 {
		it := heap.Pop(q).(queueItem)
		v := it.vertex
		if !r.accept(ns, v, it.sol) {
			continue
		}
		idx := int32(len(ns.at[v]) - 1)
		for _, e := range p.G.Adj(v) {
			if p.G.Blocked(e.To) {
				continue
			}
			next := solution{
				sig:        augment(p.Mode, it.sol.sig, e),
				kind:       kindAugment,
				prevVertex: v,
				prevIdx:    idx,
			}
			heap.Push(q, queueItem{sol: next, vertex: e.To})
		}
	}
}

// accept appends the solution to A[id][v] unless dominated (line d7).
// It enforces the per-vertex cap with the delay-quantum rule.
func (r *Result) accept(ns *nodeSols, v Vertex, s solution) bool {
	list := ns.at[v]
	for i := range list {
		if dominates(r.p.Mode, &list[i].sig, &s.sig) {
			return false
		}
	}
	if r.p.MaxPerVertex > 0 && len(list) >= r.p.MaxPerVertex {
		// Only worth keeping if it beats the current best arrival by
		// more than the quantum.
		best := math.Inf(1)
		for i := range list {
			if list[i].sig.D[0] < best {
				best = list[i].sig.D[0]
			}
		}
		if s.sig.D[0] >= best-r.p.DelayQuantum {
			return false
		}
	}
	ns.at[v] = append(list, s)
	return true
}

// SolutionsAt exposes the accepted signature set A[node][v]; used by
// tests to check the DP against the paper's worked example.
func (r *Result) SolutionsAt(node NodeID, v Vertex) []Sig {
	list := r.sols[node].at[v]
	out := make([]Sig, len(list))
	for i := range list {
		out[i] = list[i].sig
	}
	return out
}

// SelectByBound picks from the frontier the cheapest solution whose max
// arrival beats the bound — "the cheapest solution that is fast enough"
// (Section II-C) — falling back to the fastest solution when none
// meets the bound.
func (r *Result) SelectByBound(bound float64) FrontierSol {
	var fastest *FrontierSol
	for i := range r.Frontier {
		f := &r.Frontier[i]
		if fastest == nil || f.Sig.D[0] < fastest.Sig.D[0] {
			fastest = f
		}
	}
	// Frontier is cost-sorted: first hit is the cheapest fast-enough.
	for i := range r.Frontier {
		if r.Frontier[i].Sig.D[0] <= bound {
			return r.Frontier[i]
		}
	}
	return *fastest
}

// Embedding is a fully reconstructed solution.
type Embedding struct {
	// NodeVertex gives each tree node's chosen vertex.
	NodeVertex []Vertex
	// Routes[i] is the wire route from node i's vertex to the vertex
	// where its signal is consumed by the parent's join, inclusive of
	// both endpoints (length 1 when the parent joins where i sits).
	Routes [][]Vertex
	// WireCost is the total edge cost of all routes.
	WireCost float64
}

// Extract reconstructs the embedding behind a frontier solution by
// retracing the DP choices top-down (Section II: "the actual embedding
// is reconstructed in a top-down process").
func (r *Result) Extract(f FrontierSol) *Embedding {
	emb := &Embedding{
		NodeVertex: make([]Vertex, len(r.p.T.Nodes)),
		Routes:     make([][]Vertex, len(r.p.T.Nodes)),
	}
	for i := range emb.NodeVertex {
		emb.NodeVertex[i] = -1
	}
	r.extract(f.Vertex, int32(f.idx), r.p.T.Root, emb)
	return emb
}

func (r *Result) extract(v Vertex, idx int32, node NodeID, emb *Embedding) {
	ns := &r.sols[node]
	// Walk the augment chain back to the branching point, recording
	// the route (in consumption-to-branch order, reversed at the end).
	route := []Vertex{v}
	sol := ns.at[v][idx]
	for sol.kind == kindAugment {
		pv, pi := sol.prevVertex, sol.prevIdx
		route = append(route, pv)
		v, idx = pv, pi
		sol = ns.at[v][idx]
	}
	for i, j := 0, len(route)-1; i < j; i, j = i+1, j-1 {
		route[i], route[j] = route[j], route[i]
	}
	emb.NodeVertex[node] = v
	emb.Routes[node] = route
	emb.WireCost += routeCost(r.p.G, route)
	if sol.kind == kindLeaf {
		return
	}
	children := r.p.T.Nodes[node].Children
	refs := ns.joinPool[sol.joinRef : sol.joinRef+int32(len(children))]
	for i, c := range children {
		r.extract(v, refs[i], c, emb)
	}
}

func routeCost(g *Graph, route []Vertex) float64 {
	total := 0.0
	for i := 1; i < len(route); i++ {
		for _, e := range g.Adj(route[i-1]) {
			if e.To == route[i] {
				total += e.Cost
				break
			}
		}
	}
	return total
}
