package embed

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Problem is one fanin-tree embedding instance.
type Problem struct {
	G    *Graph
	T    *Tree
	Mode Mode
	// PlaceCost returns p_ij, the cost of placing internal tree node i
	// at vertex j (Section II-A). nil means zero everywhere. Return
	// +Inf to forbid a location for one node. Must be safe for
	// concurrent calls when Parallelism > 1.
	PlaceCost func(node NodeID, v Vertex) float64
	// Capacity returns the remaining capacity of the slot at v for the
	// overlap-control scheme; nil means capacity 1 everywhere. Only
	// consulted when Mode.OverlapControl is set. Must be safe for
	// concurrent calls when Parallelism > 1.
	Capacity func(v Vertex) int
	// MaxPerVertex caps the solution list kept per (node, vertex);
	// 0 keeps every non-dominated solution (exact). When the cap is
	// hit, a new solution is accepted only if it improves the current
	// fastest arrival by more than DelayQuantum — a documented
	// approximation for very large instances.
	MaxPerVertex int
	DelayQuantum float64
	// Parallelism is the worker count for the join fan-out and for
	// processing independent subtrees concurrently. 0 or 1 runs the
	// exact serial path; any value produces bit-identical results
	// (joins are sharded over vertex ranges and merged back in vertex
	// order, and sibling subtrees are data-independent).
	Parallelism int
}

func (p *Problem) workers() int {
	if p.Parallelism <= 1 {
		return 1
	}
	return p.Parallelism
}

type solKind uint8

const (
	kindLeaf solKind = iota
	kindJoin
	kindAugment
)

// solution couples a signature with the provenance needed to
// reconstruct the embedding top-down after a solution is chosen.
type solution struct {
	sig  Sig
	kind solKind
	// kindAugment: predecessor solution.
	prevVertex Vertex
	prevIdx    int32
	// kindJoin: children solution indices at the same vertex, stored
	// in nodeSols.joinPool[joinRef : joinRef+len(children)].
	joinRef int32
}

// nodeSols holds the accepted non-dominated solution sets A[i][j] for
// one tree node, plus the flattened child references of its join
// solutions.
type nodeSols struct {
	at       [][]solution
	joinPool []int32
}

// Result is the outcome of Solve: the non-dominated cost/arrival
// tradeoff at the root ("Frontier"), plus enough state to extract any
// chosen solution's full embedding.
type Result struct {
	p        *Problem
	sols     []nodeSols
	Frontier []FrontierSol

	// ctx and aborted implement cooperative cancellation: workers poll
	// the flag (set once ctx is done) at amortized intervals and bail
	// out; the partial DP state is discarded and SolveContext returns
	// ctx.Err(). Results are never partial: a run either completes
	// bit-identically to the uncancelled one or fails with the
	// context's error.
	ctx     context.Context
	aborted atomic.Bool
}

// ctxCheckStride amortizes ctx.Err polls over this many wavefront pops
// or join vertices per worker; the flag check between strides is a
// single atomic load.
const ctxCheckStride = 512

// cancelled polls the context (amortized by the caller) and latches the
// abort flag so sibling workers stop at their next stride boundary.
func (r *Result) cancelled() bool {
	if r.aborted.Load() {
		return true
	}
	if r.ctx != nil && r.ctx.Err() != nil {
		r.aborted.Store(true)
		return true
	}
	return false
}

// FrontierSol is one point on the root tradeoff curve.
type FrontierSol struct {
	Sig Sig
	// Vertex is where the root was placed (always the fixed root
	// vertex unless the root was free, the FF-relocation mode).
	Vertex Vertex
	idx    int32
}

// solverScratch bundles the reusable per-solve buffers: the wavefront
// heap backing, the double-buffered join fold (combo lists plus the
// flat child-index arenas behind them), and the prune staircase. It is
// pooled so repeated Solve calls inside the engine loop stop churning
// the garbage collector.
type solverScratch struct {
	items  []queueItem
	combos [2][]combo
	arena  [2][]int32
	// stairBranch / stairs are the branch-classed prune staircases:
	// one monotone (d0, peak) staircase per distinct Branch value seen
	// among the combos of one join (see pruneCombos2D).
	stairBranch []int32
	stairs      [][]stairStep
}

var scratchPool = sync.Pool{New: func() any { return new(solverScratch) }}

func getScratch() *solverScratch   { return scratchPool.Get().(*solverScratch) }
func putScratch(sc *solverScratch) { scratchPool.Put(sc) }

// Solve runs the embedding DP of Fig. 6 and returns the root tradeoff
// curve sorted by increasing cost. With Parallelism > 1 independent
// subtrees and join fan-outs run on a worker pool; the result is
// bit-identical to the serial path.
func (p *Problem) Solve() (*Result, error) {
	return p.SolveContext(context.Background())
}

// SolveContext is Solve under a context: the DP polls for cancellation
// at amortized intervals in the level scheduler, join fan-out, and
// wavefront expansion, abandons the run, and returns ctx.Err(). All
// worker goroutines exit before the call returns, cancelled or not.
func (p *Problem) SolveContext(ctx context.Context) (*Result, error) {
	if err := p.T.Validate(p.G.NumVertices()); err != nil {
		return nil, err
	}
	r := &Result{p: p, ctx: ctx, sols: make([]nodeSols, len(p.T.Nodes))}
	for i := range r.sols {
		//replint:ignore hotalloc -- one-time per-node table setup before the DP starts, not per-pop work
		r.sols[i].at = make([][]solution, p.G.NumVertices())
	}
	workers := p.workers()
	if workers > 1 {
		r.runLevels(workers)
	} else {
		sc := getScratch()
		for _, id := range p.T.PostOrder() {
			if id == p.T.Root || r.cancelled() {
				break // root is handled in finish; cancel abandons the DP
			}
			r.processNode(id, 1, sc)
		}
		putScratch(sc)
	}
	return r.finish(workers)
}

// processNode computes one non-root node's accepted solution sets:
// ComputeInitial (line b2) for leaves or JoinTree (line c2) for
// internal nodes, followed by the wavefront expansion. par > 1 shards
// the join across vertex ranges.
func (r *Result) processNode(id NodeID, par int, sc *solverScratch) {
	if r.cancelled() {
		return
	}
	n := &r.p.T.Nodes[id]
	switch {
	case n.IsLeaf():
		init := solution{sig: newLeafSig(r.p.Mode, n.Arr, n.Critical), kind: kindLeaf}
		sc.items = append(sc.items[:0], queueItem{sol: init, vertex: n.Vertex})
	case par > 1:
		ns := &r.sols[id]
		sc.items = r.joinParallel(id, &ns.joinPool, sc.items[:0], par)
	default:
		ns := &r.sols[id]
		sc.items = r.joinSpan(id, 0, r.p.G.NumVertices(), nil, &ns.joinPool, sc.items[:0], sc)
	}
	r.runWavefront(id, sc)
}

// runLevels processes the tree bottom-up in dependency levels: a node
// is ready once all its children are done, so the nodes of one level
// are data-independent and run concurrently. Levels with a single node
// instead parallelize the join fan-out across vertices.
func (r *Result) runLevels(workers int) {
	t := r.p.T
	order := t.PostOrder()
	depth := make([]int32, len(t.Nodes))
	maxd := int32(0)
	for _, id := range order {
		d := int32(0)
		for _, c := range t.Nodes[id].Children {
			if depth[c]+1 > d {
				d = depth[c] + 1
			}
		}
		depth[id] = d
		if id != t.Root && d > maxd {
			maxd = d
		}
	}
	levels := make([][]NodeID, maxd+1)
	for _, id := range order {
		if id == t.Root {
			continue
		}
		levels[depth[id]] = append(levels[depth[id]], id)
	}
	sem := make(chan struct{}, workers)
	for _, nodes := range levels {
		if r.cancelled() {
			return // later levels would only consume abandoned inputs
		}
		if len(nodes) == 1 {
			sc := getScratch()
			r.processNode(nodes[0], workers, sc)
			putScratch(sc)
			continue
		}
		var wg sync.WaitGroup
		for _, id := range nodes {
			wg.Add(1)
			sem <- struct{}{}
			//replint:ignore hotalloc -- one launch per tree node, amortized over that node's whole wavefront
			go func(id NodeID) {
				defer wg.Done()
				sc := getScratch()
				//replint:ignore shardwrite -- processNode writes only r.sols[id], this worker's own per-node slot
				r.processNode(id, 1, sc)
				putScratch(sc)
				<-sem
			}(id)
		}
		wg.Wait()
	}
}

// finish joins at the root (A[t][root] = A^b[t][root] — the sink
// consumes the signal; no onward propagation) and assembles the global
// non-dominated frontier. A fixed root joins at its vertex only; a
// free root joins everywhere and the frontier spans all vertices.
func (r *Result) finish(workers int) (*Result, error) {
	if r.cancelled() {
		return nil, r.ctx.Err()
	}
	p := r.p
	rootNode := &p.T.Nodes[p.T.Root]
	ns := &r.sols[p.T.Root]
	sc := getScratch()
	var seeds []queueItem
	switch {
	case rootNode.Vertex >= 0:
		seeds = r.joinSpan(p.T.Root, 0, 0, []Vertex{rootNode.Vertex}, &ns.joinPool, sc.items[:0], sc)
	case workers > 1:
		seeds = r.joinParallel(p.T.Root, &ns.joinPool, sc.items[:0], workers)
	default:
		seeds = r.joinSpan(p.T.Root, 0, p.G.NumVertices(), nil, &ns.joinPool, sc.items[:0], sc)
	}
	for _, it := range seeds {
		ns.at[it.vertex] = append(ns.at[it.vertex], it.sol)
	}
	sc.items = seeds[:0]
	putScratch(sc)
	if r.cancelled() {
		// The root join itself was cut short; its seed set may be
		// partial, so the run fails rather than return a wrong curve.
		return nil, r.ctx.Err()
	}

	// Collect the global non-dominated frontier.
	total := 0
	for v := range ns.at {
		total += len(ns.at[v])
	}
	all := make([]FrontierSol, 0, total)
	for v := range ns.at {
		for i := range ns.at[v] {
			all = append(all, FrontierSol{Sig: ns.at[v][i].sig, Vertex: Vertex(v), idx: int32(i)})
		}
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("embed: no feasible embedding (root unreachable from leaves)")
	}
	// Canonical frontier order: totalLess refines the dominance partial
	// order, so the forward-only dominance scan below keeps exactly the
	// minimal antichain (a dominating solution always sorts first). It
	// is cost-major, preserving SelectByBound's cheapest-first contract,
	// and breaks cost/arrival ties toward less gate stacking so that
	// selection never picks an overlap the legalizer must undo.
	sort.Slice(all, func(i, j int) bool {
		return totalLess(p.Mode, &all[i].Sig, &all[j].Sig)
	})
	if rootNode.Vertex < 0 {
		// Free root (FF relocation, Section V-D): the caller needs
		// "the tradeoff curve composed of solutions at all possible
		// locations for the critical sink" — cross-vertex dominance
		// would discard exactly the alternative locations the
		// relocation heuristic must weigh against the sink's outgoing
		// paths, so per-vertex curves are kept. Each vertex's curve
		// still needs a post-join prune: the pre-join combo prune is
		// not enough, because finishJoin can make two incomparable
		// combos comparable (Branch grows by one and folds into Peak),
		// as the brute-force oracle demonstrates on small instances.
		for _, f := range all {
			dominated := false
			for i := range r.Frontier {
				if r.Frontier[i].Vertex == f.Vertex &&
					dominates(p.Mode, &r.Frontier[i].Sig, &f.Sig) {
					dominated = true
					break
				}
			}
			if !dominated {
				r.Frontier = append(r.Frontier, f)
			}
		}
		if assertEnabled {
			assertFrontier(p.Mode, r.Frontier, true)
		}
		return r, nil
	}
	for _, f := range all {
		dominated := false
		for i := range r.Frontier {
			if dominates(p.Mode, &r.Frontier[i].Sig, &f.Sig) {
				dominated = true
				break
			}
		}
		if !dominated {
			r.Frontier = append(r.Frontier, f)
		}
	}
	if assertEnabled {
		assertFrontier(p.Mode, r.Frontier, false)
	}
	return r, nil
}

// joinSpan computes the branching solutions A^b[id][j] (JoinTree
// line c2) for the vertices [lo, hi) — or the explicit list, when
// non-nil — by folding the children's accepted sets pairwise, then
// applying placement cost and gate delay. Seeds are appended with
// joinRef relative to *pool, so shards can build private pools that a
// deterministic merge rebases later.
func (r *Result) joinSpan(id NodeID, lo, hi int, list []Vertex, pool *[]int32, seeds []queueItem, sc *solverScratch) []queueItem {
	p := r.p
	n := &p.T.Nodes[id]
	k := int32(len(n.Children))
	join := func(v Vertex) {
		if p.G.Blocked(v) {
			return
		}
		pc := 0.0
		if p.PlaceCost != nil {
			pc = p.PlaceCost(id, v)
		}
		if math.IsInf(pc, 1) {
			return
		}
		combos, arena, feasible := r.foldVertex(id, v, sc)
		if !feasible {
			return
		}
		for ci := range combos {
			cb := &combos[ci]
			sig := finishJoin(p.Mode, cb.sig, pc, n.Intrinsic)
			if p.Mode.OverlapControl {
				cap := 1
				if p.Capacity != nil {
					cap = p.Capacity(v)
				}
				if int(sig.Branch) > cap {
					continue // would overfill the slot (Section II-A)
				}
			}
			ref := int32(len(*pool))
			// Each caller passes a private pool/seed pair: join workers
			// a stack-local shard, tree-node goroutines their own node's
			// table. The context-insensitive summary conflates them.
			//replint:ignore aliasrace -- pool is the caller's private shard (stack-local sp per join worker, per-node table per wavefront goroutine); shards merge after wg.Wait
			*pool = append(*pool, arena[cb.off:cb.off+k]...)
			//replint:ignore aliasrace -- seeds is the caller's private shard slice (nil per join worker); the rebasing merge after wg.Wait is the only cross-shard reader
			seeds = append(seeds, queueItem{
				sol:    solution{sig: sig, kind: kindJoin, joinRef: ref},
				vertex: v,
			})
		}
	}
	if list != nil {
		for _, v := range list {
			join(v)
		}
	} else {
		for v := lo; v < hi; v++ {
			if (v-lo)%ctxCheckStride == 0 && r.cancelled() {
				return seeds
			}
			join(Vertex(v))
		}
	}
	return seeds
}

// joinParallel shards joinSpan over contiguous vertex ranges on a
// worker pool, then merges the shard outputs back in vertex order, so
// the seed list and joinPool layout are bit-identical to the serial
// fold.
func (r *Result) joinParallel(id NodeID, pool *[]int32, seeds []queueItem, workers int) []queueItem {
	nv := r.p.G.NumVertices()
	chunk := (nv + workers*4 - 1) / (workers * 4)
	if chunk < 16 {
		chunk = 16
	}
	nchunks := (nv + chunk - 1) / chunk
	if nchunks <= 1 || workers <= 1 {
		sc := getScratch()
		seeds = r.joinSpan(id, 0, nv, nil, pool, seeds, sc)
		putScratch(sc)
		return seeds
	}
	type shard struct {
		seeds []queueItem
		pool  []int32
	}
	outs := make([]shard, nchunks)
	var next atomic.Int64
	var wg sync.WaitGroup
	nw := workers
	if nw > nchunks {
		nw = nchunks
	}
	for w := 0; w < nw; w++ {
		wg.Add(1)
		//replint:ignore hotalloc -- one launch per join worker, amortized over the worker's chunk stream
		go func() {
			defer wg.Done()
			sc := getScratch()
			defer putScratch(sc)
			for {
				ci := int(next.Add(1)) - 1
				if ci >= nchunks {
					return
				}
				lo := ci * chunk
				hi := lo + chunk
				if hi > nv {
					hi = nv
				}
				var sp []int32
				// Chunk indices come from the atomic counter: each
				// worker claims a distinct ci, so the outs entries
				// written here are disjoint across workers.
				//replint:ignore sharedwrite -- ci is claimed via next.Add; workers own disjoint outs entries
				outs[ci].seeds = r.joinSpan(id, lo, hi, nil, &sp, nil, sc)
				//replint:ignore sharedwrite -- ci is claimed via next.Add; workers own disjoint outs entries
				outs[ci].pool = sp
			}
		}()
	}
	wg.Wait()
	for ci := range outs {
		base := int32(len(*pool))
		// The merge runs after wg.Wait, and across the per-node
		// wavefront goroutines each node folds into its own table
		// (keyed by the goroutine's id parameter).
		//replint:ignore aliasrace -- sequential merge post wg.Wait; per-node goroutines write only their own id's pool
		*pool = append(*pool, outs[ci].pool...)
		for _, it := range outs[ci].seeds {
			it.sol.joinRef += base
			seeds = append(seeds, it)
		}
	}
	return seeds
}

// foldVertex folds node id's children at vertex v: a pairwise
// cross-product with dominance pruning at each step (the paper's 2-D
// join is a linear merge; the pairwise cross-product with pruning is
// the general form that also covers the Lex and load-dependent
// signatures). The returned combos and their child-index arena live in
// sc and are valid until the next foldVertex call on that scratch.
func (r *Result) foldVertex(id NodeID, v Vertex, sc *solverScratch) ([]combo, []int32, bool) {
	p := r.p
	children := p.T.Nodes[id].Children
	cur := 0
	sc.combos[0] = sc.combos[0][:0]
	sc.arena[0] = sc.arena[0][:0]
	for ci, c := range children {
		childSols := r.sols[c].at[v]
		if len(childSols) == 0 {
			return nil, nil, false
		}
		if ci == 0 {
			for i := range childSols {
				sc.combos[0] = append(sc.combos[0], combo{sig: childSols[i].sig, off: int32(len(sc.arena[0]))})
				sc.arena[0] = append(sc.arena[0], int32(i))
			}
			continue
		}
		nxt := 1 - cur
		sc.combos[nxt] = sc.combos[nxt][:0]
		sc.arena[nxt] = sc.arena[nxt][:0]
		for ti := range sc.combos[cur] {
			cb := &sc.combos[cur][ti]
			prefix := sc.arena[cur][cb.off : cb.off+int32(ci)]
			for i := range childSols {
				m := merge(p.Mode, &cb.sig, &childSols[i].sig)
				off := int32(len(sc.arena[nxt]))
				sc.arena[nxt] = append(sc.arena[nxt], prefix...)
				sc.arena[nxt] = append(sc.arena[nxt], int32(i))
				sc.combos[nxt] = append(sc.combos[nxt], combo{sig: m, off: off})
			}
		}
		cur = nxt
		sc.combos[cur] = pruneCombos(p.Mode, sc.combos[cur], sc)
	}
	return sc.combos[cur], sc.arena[cur], true
}

// combo is a partial join: a merged signature plus the offset of the
// child solution indices that produced it in the fold arena.
type combo struct {
	sig Sig
	off int32
}

// stairStep is one step of the 2-D prune staircase: among kept combos
// with arrival <= d0, the minimum peak is peak.
type stairStep struct {
	d0   float64
	peak int32
}

// pruneCombos removes dominated combinations. The input is sorted by
// totalLess — a total order refining dominance — so the forward-only
// scans below yield the canonical minimal antichain regardless of input
// order. For the common plain signature (LexDepth 1, linear delay, no
// MC) the post-sort scan is a near-linear sweep over branch-classed
// staircases; the general quadratic scan covers Lex-N, Lex-mc and
// load-dependent modes.
func pruneCombos(m Mode, in []combo, sc *solverScratch) []combo {
	sort.Slice(in, func(i, j int) bool { return totalLess(m, &in[i].sig, &in[j].sig) })
	if m.lexDepth() == 1 && !m.MC && !m.loadDependent() {
		out := pruneCombos2D(in, sc)
		if assertEnabled {
			assertNonDominatedCombos(m, out)
		}
		return out
	}
	out := in[:0]
	for i := range in {
		dominated := false
		for j := range out {
			if dominates(m, &out[j].sig, &in[i].sig) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, in[i])
		}
	}
	if assertEnabled {
		assertNonDominatedCombos(m, out)
	}
	return out
}

// pruneCombos2D prunes totalLess-sorted combos under the plain-mode
// dominance test (cost, arrival, branch, peak — cost ordering is given
// by the sort, so dominance reduces to a query over the remaining
// dimensions): a combo is dominated iff some kept combo has arrival,
// branch and peak all no worse. Kept combos live in one monotone
// (d0, peak) staircase per distinct Branch value — a join sees only a
// handful of distinct branch counts, so a dominance query is a binary
// search per no-worse branch class instead of a scan over all kept
// combos. Each staircase keeps d0 non-decreasing and peak strictly
// decreasing, so the best peak at arrival <= x is the last step with
// d0 <= x.
func pruneCombos2D(in []combo, sc *solverScratch) []combo {
	branches := sc.stairBranch[:0]
	out := in[:0]
	for i := range in {
		d0, br, peak := in[i].sig.D[0], in[i].sig.Branch, in[i].sig.Peak
		dominated := false
		for c := range branches {
			if branches[c] > br {
				continue
			}
			stair := sc.stairs[c]
			// pos: first step with d0 > x.d0.
			pos := sort.Search(len(stair), func(j int) bool { return stair[j].d0 > d0 }) //replint:ignore hotalloc -- sort.Search predicate does not escape; the compiler stack-allocates it
			if pos > 0 && stair[pos-1].peak <= peak {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		out = append(out, in[i])
		// Find (or open) this branch value's staircase, then splice the
		// new step in, dropping the now-redundant steps that follow it
		// with an equal-or-worse peak.
		cls := -1
		for c := range branches {
			if branches[c] == br {
				cls = c
				break
			}
		}
		if cls < 0 {
			cls = len(branches)
			branches = append(branches, br)
			if len(sc.stairs) <= cls {
				sc.stairs = append(sc.stairs, nil)
			}
			sc.stairs[cls] = sc.stairs[cls][:0]
		}
		stair := sc.stairs[cls]
		pos := sort.Search(len(stair), func(j int) bool { return stair[j].d0 > d0 }) //replint:ignore hotalloc -- sort.Search predicate does not escape; the compiler stack-allocates it
		j := pos
		for j < len(stair) && stair[j].peak >= peak {
			j++
		}
		if j == pos {
			stair = append(stair, stairStep{})
			copy(stair[pos+1:], stair[pos:])
			stair[pos] = stairStep{d0: d0, peak: peak}
		} else {
			stair[pos] = stairStep{d0: d0, peak: peak}
			stair = append(stair[:pos+1], stair[j:]...)
		}
		sc.stairs[cls] = stair
	}
	if assertEnabled {
		for c := range branches {
			assertStaircase(sc.stairs[c])
		}
	}
	sc.stairBranch = branches[:0]
	return out
}

// queueItem is a pending candidate in the wavefront priority queue.
type queueItem struct {
	sol    solution
	vertex Vertex
}

// runWavefront is GenDijkstra (Fig. 6): a multi-source generalized
// Dijkstra expansion seeded with the node's branching solutions, which
// processNode has staged in sc.items. Because items pop in
// non-decreasing (cost, arrival) order, a popped candidate not
// dominated by the already-accepted set at its vertex is itself
// non-dominated and final.
func (r *Result) runWavefront(id NodeID, sc *solverScratch) {
	p := r.p
	ns := &r.sols[id]
	h := waveHeap{mode: p.Mode, items: sc.items}
	h.init()
	var lastPop Sig
	havePop := false
	pops := 0
	for len(h.items) > 0 {
		if pops%ctxCheckStride == 0 && r.cancelled() {
			break // abandon this node's expansion; Solve will fail
		}
		pops++
		it := h.pop()
		if assertEnabled {
			assertWaveOrder(p.Mode, &lastPop, havePop, &it.sol.sig)
			lastPop, havePop = it.sol.sig, true
		}
		v := it.vertex
		if !r.accept(ns, v, it.sol) {
			continue
		}
		idx := int32(len(ns.at[v]) - 1)
		for _, e := range p.G.Adj(v) {
			if p.G.Blocked(e.To) {
				continue
			}
			next := solution{
				sig:        augment(p.Mode, it.sol.sig, e),
				kind:       kindAugment,
				prevVertex: v,
				prevIdx:    idx,
			}
			h.push(queueItem{sol: next, vertex: e.To})
		}
	}
	sc.items = h.items[:0]
}

// accept appends the solution to A[id][v] unless dominated (line d7).
// It enforces the per-vertex cap with the delay-quantum rule.
func (r *Result) accept(ns *nodeSols, v Vertex, s solution) bool {
	list := ns.at[v]
	for i := range list {
		if dominates(r.p.Mode, &list[i].sig, &s.sig) {
			return false
		}
	}
	if r.p.MaxPerVertex > 0 && len(list) >= r.p.MaxPerVertex {
		// Only worth keeping if it beats the current best arrival by
		// more than the quantum.
		best := math.Inf(1)
		for i := range list {
			if list[i].sig.D[0] < best {
				best = list[i].sig.D[0]
			}
		}
		if s.sig.D[0] >= best-r.p.DelayQuantum {
			return false
		}
	}
	if assertEnabled {
		assertNoReverseDomination(r.p.Mode, list, &s.sig)
	}
	ns.at[v] = append(list, s)
	return true
}

// SolutionsAt exposes the accepted signature set A[node][v]; used by
// tests to check the DP against the paper's worked example.
func (r *Result) SolutionsAt(node NodeID, v Vertex) []Sig {
	list := r.sols[node].at[v]
	out := make([]Sig, len(list))
	for i := range list {
		out[i] = list[i].sig
	}
	return out
}

// SelectByBound picks from the frontier the cheapest solution whose max
// arrival beats the bound — "the cheapest solution that is fast enough"
// (Section II-C). When no solution meets the bound (or the frontier is
// empty) it returns the zero FrontierSol and ok=false; callers decide
// the fallback (the engine falls back to SelectFastest) instead of
// silently receiving whichever solution fell out.
func (r *Result) SelectByBound(bound float64) (FrontierSol, bool) {
	// Frontier is cost-sorted: first hit is the cheapest fast-enough.
	for i := range r.Frontier {
		if r.Frontier[i].Sig.D[0] <= bound {
			return r.Frontier[i], true
		}
	}
	return FrontierSol{}, false
}

// SelectFastest returns the frontier solution with the smallest max
// arrival, breaking arrival ties toward the cheaper (earlier-sorted)
// solution; ok=false when the frontier is empty.
func (r *Result) SelectFastest() (FrontierSol, bool) {
	best := -1
	for i := range r.Frontier {
		if best < 0 || r.Frontier[i].Sig.D[0] < r.Frontier[best].Sig.D[0] {
			best = i
		}
	}
	if best < 0 {
		return FrontierSol{}, false
	}
	return r.Frontier[best], true
}

// Embedding is a fully reconstructed solution.
type Embedding struct {
	// NodeVertex gives each tree node's chosen vertex.
	NodeVertex []Vertex
	// Routes[i] is the wire route from node i's vertex to the vertex
	// where its signal is consumed by the parent's join, inclusive of
	// both endpoints (length 1 when the parent joins where i sits).
	Routes [][]Vertex
	// WireCost is the total edge cost of all routes.
	WireCost float64
}

// Extract reconstructs the embedding behind a frontier solution by
// retracing the DP choices top-down (Section II: "the actual embedding
// is reconstructed in a top-down process").
func (r *Result) Extract(f FrontierSol) *Embedding {
	emb := &Embedding{
		NodeVertex: make([]Vertex, len(r.p.T.Nodes)),
		Routes:     make([][]Vertex, len(r.p.T.Nodes)),
	}
	for i := range emb.NodeVertex {
		emb.NodeVertex[i] = -1
	}
	r.extract(f.Vertex, int32(f.idx), r.p.T.Root, emb)
	return emb
}

func (r *Result) extract(v Vertex, idx int32, node NodeID, emb *Embedding) {
	ns := &r.sols[node]
	// Walk the augment chain back to the branching point, recording
	// the route (in consumption-to-branch order, reversed at the end).
	route := []Vertex{v}
	sol := ns.at[v][idx]
	//replint:ignore ctxstride -- reconstruction after the DP completes; bounded by the augment-chain length
	for sol.kind == kindAugment {
		pv, pi := sol.prevVertex, sol.prevIdx
		route = append(route, pv)
		v, idx = pv, pi
		sol = ns.at[v][idx]
	}
	for i, j := 0, len(route)-1; i < j; i, j = i+1, j-1 {
		route[i], route[j] = route[j], route[i]
	}
	emb.NodeVertex[node] = v
	emb.Routes[node] = route
	emb.WireCost += routeCost(r.p.G, route)
	if sol.kind == kindLeaf {
		return
	}
	children := r.p.T.Nodes[node].Children
	refs := ns.joinPool[sol.joinRef : sol.joinRef+int32(len(children))]
	for i, c := range children {
		r.extract(v, refs[i], c, emb)
	}
}

func routeCost(g *Graph, route []Vertex) float64 {
	total := 0.0
	for i := 1; i < len(route); i++ {
		if c, ok := g.EdgeCost(route[i-1], route[i]); ok {
			total += c
		}
	}
	return total
}
