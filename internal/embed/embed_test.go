package embed

import (
	"math"
	"sort"
	"testing"
)

// lineGraph builds the 5-slot line of the paper's worked example
// (Fig. 7): unit wire cost and unit wire length per edge.
func lineGraph(n int) *Graph {
	g := NewGraph(n)
	for v := 0; v < n-1; v++ {
		g.AddBiEdge(Vertex(v), Vertex(v+1), 1, 1)
	}
	return g
}

// pair is a (cost, arrival) projection of a signature.
type pair struct{ c, t float64 }

// project reduces a signature set to its non-dominated (cost, max
// arrival) pairs, sorted by cost — the form in which the paper's
// worked example lists solution sets.
func project(sigs []Sig) []pair {
	ps := make([]pair, 0, len(sigs))
	for _, s := range sigs {
		ps = append(ps, pair{s.Cost, s.D[0]})
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].c != ps[j].c {
			return ps[i].c < ps[j].c
		}
		return ps[i].t < ps[j].t
	})
	var out []pair
	for _, p := range ps {
		if len(out) > 0 && out[len(out)-1].t <= p.t {
			continue
		}
		out = append(out, p)
	}
	return out
}

func pairsEqual(a, b []pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPaperWorkedExample reproduces the exact solution sets of the
// Section II worked example: line graph of slots 0..4, s fixed at 0,
// t at 4, one internal node x; placement cost = slot index, wire cost
// = length, wire delay = length², gate delay 1.
func TestPaperWorkedExample(t *testing.T) {
	g := lineGraph(5)
	tree := &Tree{
		Nodes: []Node{
			{Vertex: 0, Arr: 0},                              // 0: leaf s at slot 0
			{Children: []NodeID{0}, Intrinsic: 1},            // 1: internal x
			{Children: []NodeID{1}, Vertex: 4, Intrinsic: 1}, // 2: root t at slot 4
		},
		Root: 2,
	}
	p := &Problem{
		G:    g,
		T:    tree,
		Mode: Mode{LexDepth: 1, Delay: QuadraticDelay},
		PlaceCost: func(node NodeID, v Vertex) float64 {
			if node == 2 {
				return 0 // the sink is already placed
			}
			if v == 0 || v == 4 {
				// The example considers x only at slots 1..3 (s and t
				// occupy 0 and 4).
				return math.Inf(1)
			}
			return float64(v) // "placement cost equal to the slot index"
		},
	}
	r, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}

	// A[s][j] after the leaf wavefront.
	wantS := map[Vertex][]pair{
		1: {{1, 1}},
		2: {{2, 4}},
		3: {{3, 9}},
		4: {{4, 16}},
	}
	for v, want := range wantS {
		if got := project(r.SolutionsAt(0, v)); !pairsEqual(got, want) {
			t.Errorf("A[s][%d] = %v, want %v", v, got, want)
		}
	}

	// A[x][j] after join + wavefront.
	wantX := map[Vertex][]pair{
		1: {{2, 2}},
		2: {{3, 3}},
		3: {{4, 6}},
		4: {{5, 11}, {6, 9}},
	}
	for v, want := range wantX {
		if got := project(r.SolutionsAt(1, v)); !pairsEqual(got, want) {
			t.Errorf("A[x][%d] = %v, want %v", v, got, want)
		}
	}

	// Final tradeoff at the root: {(5,12), (6,10)}.
	want := []pair{{5, 12}, {6, 10}}
	if got := project(r.SolutionsAt(2, 4)); !pairsEqual(got, want) {
		t.Fatalf("A[t][4] = %v, want %v", got, want)
	}

	// "Assuming a lower bound of 15 units, we would choose (5,12)":
	sel, ok := r.SelectByBound(15)
	if !ok || sel.Sig.Cost != 5 || sel.Sig.D[0] != 12 {
		t.Errorf("SelectByBound(15) = (%v,%v,%v), want (5,12,true)", sel.Sig.Cost, sel.Sig.D[0], ok)
	}
	emb := r.Extract(sel)
	if emb.NodeVertex[1] != 1 {
		t.Errorf("chosen solution places x at %d, want slot 1", emb.NodeVertex[1])
	}
	// A tighter bound forces the faster, costlier solution: x at 2.
	sel, ok = r.SelectByBound(11)
	if !ok || sel.Sig.Cost != 6 || sel.Sig.D[0] != 10 {
		t.Errorf("SelectByBound(11) = (%v,%v,%v), want (6,10,true)", sel.Sig.Cost, sel.Sig.D[0], ok)
	}
	if emb := r.Extract(sel); emb.NodeVertex[1] != 2 {
		t.Errorf("fast solution places x at %d, want slot 2", emb.NodeVertex[1])
	}
}

// TestLinearLine checks the linear-delay model on a simple chain:
// the unique optimal embedding places the gate anywhere on the
// straight line (cost identical), and arrival is distance + gates.
func TestLinearLine(t *testing.T) {
	g := lineGraph(7)
	tree := &Tree{
		Nodes: []Node{
			{Vertex: 0, Arr: 0},
			{Children: []NodeID{0}, Intrinsic: 2},
			{Children: []NodeID{1}, Vertex: 6, Intrinsic: 2},
		},
		Root: 2,
	}
	p := &Problem{G: g, T: tree, Mode: Mode{LexDepth: 1, Delay: LinearDelay}}
	r, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Frontier) != 1 {
		t.Fatalf("frontier size = %d, want 1 (no cost/delay tradeoff on a line)", len(r.Frontier))
	}
	f := r.Frontier[0]
	if f.Sig.Cost != 6 { // total wire
		t.Errorf("cost = %v, want 6", f.Sig.Cost)
	}
	if f.Sig.D[0] != 6+2+2 { // wire + two gates
		t.Errorf("arrival = %v, want 10", f.Sig.D[0])
	}
	emb := r.Extract(f)
	if emb.WireCost != 6 {
		t.Errorf("extracted wire cost = %v, want 6", emb.WireCost)
	}
	// Route endpoints are consistent: every node's route starts at its
	// vertex.
	for id, route := range emb.Routes {
		if len(route) == 0 {
			continue
		}
		if route[0] != emb.NodeVertex[id] {
			t.Errorf("node %d route starts at %d, not its vertex %d", id, route[0], emb.NodeVertex[id])
		}
	}
}

// grid5 builds a 5x5 unit grid.
func grid5() *Graph {
	return NewGrid(GridSpec{X0: 0, Y0: 0, W: 5, H: 5, WireCost: 1, WireDelay: 1})
}

// vtx is a helper to index a 5-wide grid.
func vtx(x, y int) Vertex { return Vertex(y*5 + x) }

// TestGridJoin embeds a 2-input gate on a grid: two leaves at corners,
// root at a third corner. The optimal gate position is on the shortest
// Steiner point.
func TestGridJoin(t *testing.T) {
	tree := &Tree{
		Nodes: []Node{
			{Vertex: vtx(0, 0), Arr: 0},
			{Vertex: vtx(4, 0), Arr: 0},
			{Children: []NodeID{0, 1}, Intrinsic: 1},
			{Children: []NodeID{2}, Vertex: vtx(2, 4), Intrinsic: 1},
		},
		Root: 3,
	}
	p := &Problem{G: grid5(), T: tree, Mode: Mode{LexDepth: 1}}
	r, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	best, _ := r.SelectFastest()
	emb := r.Extract(best)
	gate := emb.NodeVertex[2]
	gx, gy := int(gate)%5, int(gate)/5
	// The delay-optimal gate location is (2, y): equalizes the two
	// leaf paths; max arrival = (2+y) wire + 1 + (4-y) wire + 1.
	if gx != 2 {
		t.Errorf("gate at (%d,%d), want x=2 (balanced between leaves)", gx, gy)
	}
	wantArr := float64(2+gy) + 1 + float64(4-gy) + 1
	if best.Sig.D[0] != wantArr {
		t.Errorf("arrival = %v, want %v", best.Sig.D[0], wantArr)
	}
}

// TestLeafArrivalSkew verifies that leaf arrival times feed through to
// the root arrival: with one late leaf, the best achievable arrival is
// the late leaf's arrival plus its monotone distance to the root plus
// both gate delays.
func TestLeafArrivalSkew(t *testing.T) {
	tree := &Tree{
		Nodes: []Node{
			{Vertex: vtx(0, 2), Arr: 10},
			{Vertex: vtx(4, 2), Arr: 0},
			{Children: []NodeID{0, 1}, Intrinsic: 1},
			{Children: []NodeID{2}, Vertex: vtx(4, 0), Intrinsic: 1},
		},
		Root: 3,
	}
	p := &Problem{G: grid5(), T: tree, Mode: Mode{LexDepth: 1}}
	r, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	best, _ := r.SelectFastest()
	// Lower bound: 10 + dist((0,2),(4,0)) + two gates = 10 + 6 + 2.
	if best.Sig.D[0] != 18 {
		t.Errorf("fastest arrival = %v, want 18 (late leaf dominates)", best.Sig.D[0])
	}
	// The gate sits on a monotone late-leaf-to-root path.
	emb := r.Extract(best)
	gate := emb.NodeVertex[2]
	gx, gy := int(gate)%5, int(gate)/5
	if d := gx + (2 - gy) + (4 - gx) + gy; d != 6 {
		t.Errorf("gate at (%d,%d) is off every monotone path", gx, gy)
	}
}

// TestPlacementDiscount verifies the equivalence-discount mechanism:
// with a discounted slot available, the cheapest solution uses it.
func TestPlacementDiscount(t *testing.T) {
	discounted := vtx(1, 1)
	tree := &Tree{
		Nodes: []Node{
			{Vertex: vtx(0, 0), Arr: 0},
			{Children: []NodeID{0}, Intrinsic: 1},
			{Children: []NodeID{1}, Vertex: vtx(4, 4), Intrinsic: 1},
		},
		Root: 2,
	}
	p := &Problem{
		G:    grid5(),
		T:    tree,
		Mode: Mode{LexDepth: 1},
		PlaceCost: func(node NodeID, v Vertex) float64 {
			if node != 1 {
				return 0
			}
			if v == discounted {
				return 0 // logically equivalent cell already here
			}
			return 5 // replication overhead elsewhere
		},
	}
	r, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Cheapest solution places the gate on the discounted slot. Since
	// (1,1) is on a monotone route, there is no delay penalty either.
	sort.Slice(r.Frontier, func(i, j int) bool { return r.Frontier[i].Sig.Cost < r.Frontier[j].Sig.Cost })
	emb := r.Extract(r.Frontier[0])
	if emb.NodeVertex[1] != discounted {
		t.Errorf("cheapest embedding at %d, want discounted %d", emb.NodeVertex[1], discounted)
	}
}

// TestBlockedVertices verifies blocked regions are avoided entirely.
func TestBlockedVertices(t *testing.T) {
	g := grid5()
	// Block the middle column except the top, forcing a detour.
	for y := 0; y < 4; y++ {
		g.Block(vtx(2, y))
	}
	tree := &Tree{
		Nodes: []Node{
			{Vertex: vtx(0, 0), Arr: 0},
			{Children: []NodeID{0}, Intrinsic: 0},
			{Children: []NodeID{1}, Vertex: vtx(4, 0), Intrinsic: 0},
		},
		Root: 2,
	}
	p := &Problem{G: g, T: tree, Mode: Mode{LexDepth: 1}}
	r, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	f, _ := r.SelectByBound(math.Inf(1))
	// Straight distance is 4 but the wall forces the route through
	// (2,4): length 4 + 2*4 = 12.
	if f.Sig.Cost != 12 {
		t.Errorf("detour cost = %v, want 12", f.Sig.Cost)
	}
	emb := r.Extract(f)
	if emb.NodeVertex[1] == vtx(2, 0) || emb.NodeVertex[1] == vtx(2, 1) {
		t.Error("gate placed on a blocked vertex")
	}
	for _, route := range emb.Routes {
		for _, v := range route {
			if g.Blocked(v) && v != vtx(2, 4) {
				t.Errorf("route passes blocked vertex %d", v)
			}
		}
	}
}

// TestFreeRoot exercises the FF-relocation mode: with the root free,
// the frontier includes the globally best root location.
func TestFreeRoot(t *testing.T) {
	tree := &Tree{
		Nodes: []Node{
			{Vertex: vtx(0, 2), Arr: 0},
			{Vertex: vtx(4, 2), Arr: 0},
			{Children: []NodeID{0, 1}, Vertex: -1, Intrinsic: 1},
		},
		Root: 2,
	}
	p := &Problem{G: grid5(), T: tree, Mode: Mode{LexDepth: 1}}
	r, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	best, _ := r.SelectFastest()
	// Best root location is midway: arrival = 2 wire + 1 gate = 3.
	if best.Sig.D[0] != 3 {
		t.Errorf("free-root best arrival = %v, want 3", best.Sig.D[0])
	}
	x := int(best.Vertex) % 5
	if x != 2 {
		t.Errorf("free root placed at x=%d, want 2", x)
	}
}

// TestLex2Join checks the subcritical arrival bookkeeping of the Lex-2
// join: t2 = max({t_i} ∪ {t2_i} \ {t}).
func TestLex2Join(t *testing.T) {
	m := Mode{LexDepth: 2}
	a := newLeafSig(m, 5, false)
	b := newLeafSig(m, 3, false)
	j := merge(m, &a, &b)
	if j.D[0] != 5 || j.D[1] != 3 {
		t.Errorf("merge D = [%v %v], want [5 3]", j.D[0], j.D[1])
	}
	// Merging in another path slower than t2 but faster than t.
	c := newLeafSig(m, 4, false)
	j2 := merge(m, &j, &c)
	if j2.D[0] != 5 || j2.D[1] != 4 {
		t.Errorf("3-way merge D = [%v %v], want [5 4]", j2.D[0], j2.D[1])
	}
	// Associativity: (a+b)+c == (a+c)+b.
	j3 := merge(m, &a, &c)
	j4 := merge(m, &j3, &b)
	if j4.D != j2.D || j4.Cost != j2.Cost {
		t.Error("merge is not associative")
	}
	// finishJoin adds gate delay to both components.
	g := finishJoin(m, j2, 0, 1)
	if g.D[0] != 6 || g.D[1] != 5 {
		t.Errorf("finishJoin D = [%v %v], want [6 5]", g.D[0], g.D[1])
	}
}

// TestLexDominance: lexicographic delay ordering retains solutions the
// plain 2-D signature would conflate.
func TestLexDominance(t *testing.T) {
	m2 := Mode{LexDepth: 2}
	a := Sig{Cost: 3}
	a.D = [MaxLex]float64{10, 8, negInf, negInf, negInf}
	b := Sig{Cost: 3}
	b.D = [MaxLex]float64{10, 6, negInf, negInf, negInf}
	if dominates(m2, &a, &b) {
		t.Error("a (worse t2) must not dominate b")
	}
	if !dominates(m2, &b, &a) {
		t.Error("b (same cost/t, better t2) should dominate a")
	}
	m1 := Mode{LexDepth: 1}
	if !dominates(m1, &a, &b) || !dominates(m1, &b, &a) {
		t.Error("under 2-D signature the two are equivalent and dominate each other")
	}
}

// TestLexMCSig exercises the Lex-mc join and augment rules.
func TestLexMCSig(t *testing.T) {
	m := Mode{LexDepth: 1, MC: true}
	crit := newLeafSig(m, 0, true)
	if crit.W != 1 || crit.TC != 0 {
		t.Fatalf("critical leaf sig = %+v", crit)
	}
	other := newLeafSig(m, 7, false)
	j := merge(m, &crit, &other)
	if j.W != 1 {
		t.Errorf("W = %d, want 1", j.W)
	}
	if j.D[0] != 7 {
		t.Errorf("t = %v, want 7", j.D[0])
	}
	// Wire and gate delay accrue on tc only along the critical branch.
	g := finishJoin(m, j, 0, 2)
	if g.TC != 2 {
		t.Errorf("TC after gate = %v, want 2", g.TC)
	}
	e := Edge{Cost: 1, Delay: 3}
	g2 := augment(m, g, e)
	if g2.TC != 5 {
		t.Errorf("TC after wire = %v, want 5", g2.TC)
	}
	// A branch without the critical input accrues no TC.
	o2 := augment(m, newLeafSig(m, 7, false), e)
	if o2.TC != 0 {
		t.Errorf("non-critical TC = %v, want 0", o2.TC)
	}
}

// TestOverlapControl: with overlap control on a capacity-1 target, two
// gates are never joined at the same vertex.
func TestOverlapControl(t *testing.T) {
	// Chain of two internal gates between two leaves and a root, on a
	// short line so the temptation to stack gates is real.
	g := lineGraph(4)
	tree := &Tree{
		Nodes: []Node{
			{Vertex: 0, Arr: 0},
			{Children: []NodeID{0}, Intrinsic: 1},
			{Children: []NodeID{1}, Intrinsic: 1},
			{Children: []NodeID{2}, Vertex: 3, Intrinsic: 1},
		},
		Root: 3,
	}
	solve := func(overlap bool) *Embedding {
		p := &Problem{G: g, T: tree, Mode: Mode{LexDepth: 1, OverlapControl: overlap}}
		r, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		sel, ok := r.SelectByBound(math.Inf(1))
		if !ok {
			t.Fatal("empty frontier")
		}
		return r.Extract(sel)
	}
	emb := solve(true)
	if emb.NodeVertex[1] == emb.NodeVertex[2] {
		t.Errorf("overlap control violated: gates 1 and 2 both at %d", emb.NodeVertex[1])
	}
	// And the leaf's slot is also occupied: gate must not stack on it.
	if emb.NodeVertex[1] == 0 || emb.NodeVertex[2] == 0 {
		t.Error("gate stacked on the occupied leaf slot")
	}
}

// TestOverlapControlCapacity: capacity 2 allows exactly two tree cells
// per slot.
func TestOverlapControlCapacity(t *testing.T) {
	g := lineGraph(4)
	tree := &Tree{
		Nodes: []Node{
			{Vertex: 0, Arr: 0},
			{Children: []NodeID{0}, Intrinsic: 1},
			{Children: []NodeID{1}, Intrinsic: 1},
			{Children: []NodeID{2}, Vertex: 3, Intrinsic: 1},
		},
		Root: 3,
	}
	p := &Problem{
		G: g, T: tree,
		Mode:     Mode{LexDepth: 1, OverlapControl: true},
		Capacity: func(v Vertex) int { return 2 },
	}
	r, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Count of co-located tree gates never exceeds 2 in any solution.
	for _, f := range r.Frontier {
		emb := r.Extract(f)
		count := map[Vertex]int{}
		for id := range tree.Nodes {
			if !tree.Nodes[id].IsLeaf() {
				count[emb.NodeVertex[id]]++
			}
		}
		for v, c := range count {
			if c > 2 {
				t.Errorf("vertex %d holds %d gates, capacity 2", v, c)
			}
		}
	}
}

// TestElmoreMode: the 3-D (c, r, t) signature of Section II-D. A gate
// inserted mid-route re-buffers the wire: with quadratic wire delay a
// long wire is slower than two short ones plus a gate.
func TestElmoreMode(t *testing.T) {
	g := lineGraph(9)
	tree := &Tree{
		Nodes: []Node{
			{Vertex: 0, Arr: 0},
			{Children: []NodeID{0}, Intrinsic: 1}, // a "buffer" gate
			{Children: []NodeID{1}, Vertex: 8, Intrinsic: 0},
		},
		Root: 2,
	}
	p := &Problem{G: g, T: tree, Mode: Mode{LexDepth: 1, Delay: ElmoreDelay, GateR: 0}}
	r, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	best, _ := r.SelectFastest()
	emb := r.Extract(best)
	mid := emb.NodeVertex[1]
	// Elmore delay of length L from R=0 is L²/2; splitting 8 into 4+4
	// gives 8+8+1=17 vs 32 unsplit. The optimum is the middle.
	if mid != 4 {
		t.Errorf("re-buffering gate at %d, want 4 (midpoint)", mid)
	}
	if best.Sig.D[0] != 17 {
		t.Errorf("arrival = %v, want 17", best.Sig.D[0])
	}
}

// TestMaxPerVertexCap: capping solution lists keeps the solver sound
// (still returns a feasible, reasonably fast embedding).
func TestMaxPerVertexCap(t *testing.T) {
	g := NewGrid(GridSpec{W: 8, H: 8, WireCost: 1, WireDelay: 1})
	tree := &Tree{
		Nodes: []Node{
			{Vertex: 0, Arr: 0},
			{Vertex: 7, Arr: 2},
			{Children: []NodeID{0, 1}, Intrinsic: 1},
			{Children: []NodeID{2}, Vertex: 63, Intrinsic: 1},
		},
		Root: 3,
	}
	pc := func(node NodeID, v Vertex) float64 { return float64(v%7) * 0.25 }
	exact, err := (&Problem{G: g, T: tree, Mode: Mode{LexDepth: 1}, PlaceCost: pc}).Solve()
	if err != nil {
		t.Fatal(err)
	}
	capped, err := (&Problem{G: g, T: tree, Mode: Mode{LexDepth: 1}, PlaceCost: pc,
		MaxPerVertex: 3, DelayQuantum: 0.5}).Solve()
	if err != nil {
		t.Fatal(err)
	}
	fes, _ := exact.SelectFastest()
	fcs, _ := capped.SelectFastest()
	fe := fes.Sig.D[0]
	fc := fcs.Sig.D[0]
	if fc < fe {
		t.Errorf("capped solver found arrival %v better than exact %v", fc, fe)
	}
	if fc > fe+2 {
		t.Errorf("capped solver arrival %v too far from exact %v", fc, fe)
	}
}

// TestTreeValidate rejects malformed trees.
func TestTreeValidate(t *testing.T) {
	cases := []struct {
		name string
		tree Tree
	}{
		{"root out of range", Tree{Nodes: []Node{{Vertex: 0}}, Root: 5}},
		{"leaf root", Tree{Nodes: []Node{{Vertex: 0}}, Root: 0}},
		{"two parents", Tree{Nodes: []Node{
			{Vertex: 0},
			{Children: []NodeID{0}},
			{Children: []NodeID{0, 1}, Vertex: 1},
		}, Root: 2}},
		{"self child", Tree{Nodes: []Node{
			{Vertex: 0},
			{Children: []NodeID{1}, Vertex: 1},
		}, Root: 1}},
		{"unreachable node", Tree{Nodes: []Node{
			{Vertex: 0},
			{Children: []NodeID{0}, Vertex: 1},
			{Vertex: 2},
		}, Root: 1}},
		{"leaf vertex out of range", Tree{Nodes: []Node{
			{Vertex: 99},
			{Children: []NodeID{0}, Vertex: 1},
		}, Root: 1}},
	}
	for _, c := range cases {
		if err := c.tree.Validate(5); err == nil {
			t.Errorf("%s: Validate accepted malformed tree", c.name)
		}
	}
}

// TestFrontierMonotone: the returned frontier is strictly increasing in
// cost and strictly decreasing in arrival (a genuine tradeoff curve).
func TestFrontierMonotone(t *testing.T) {
	tree := &Tree{
		Nodes: []Node{
			{Vertex: vtx(0, 0), Arr: 0},
			{Vertex: vtx(0, 4), Arr: 0},
			{Children: []NodeID{0, 1}, Intrinsic: 1},
			{Children: []NodeID{2}, Vertex: vtx(4, 2), Intrinsic: 1},
		},
		Root: 3,
	}
	pc := func(node NodeID, v Vertex) float64 {
		// Cheap on the left, expensive toward the sink: creates a
		// tradeoff.
		return float64(int(v) % 5 * 2)
	}
	p := &Problem{G: grid5(), T: tree, Mode: Mode{LexDepth: 1}, PlaceCost: pc}
	r, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(r.Frontier); i++ {
		a, b := r.Frontier[i-1].Sig, r.Frontier[i].Sig
		if b.Cost <= a.Cost {
			t.Errorf("frontier cost not increasing: %v then %v", a.Cost, b.Cost)
		}
		if b.D[0] >= a.D[0] {
			t.Errorf("frontier arrival not decreasing: %v then %v", a.D[0], b.D[0])
		}
	}
}

// TestInfeasible: a fully blocked graph yields an error, not a panic.
func TestInfeasible(t *testing.T) {
	g := lineGraph(3)
	g.Block(1) // the only path between 0 and 2
	tree := &Tree{
		Nodes: []Node{
			{Vertex: 0, Arr: 0},
			{Children: []NodeID{0}, Vertex: 2, Intrinsic: 1},
		},
		Root: 1,
	}
	p := &Problem{G: g, T: tree, Mode: Mode{LexDepth: 1}}
	if _, err := p.Solve(); err == nil {
		t.Error("expected infeasibility error")
	}
}

// TestSelectByBoundTable pins the selection contract: the cheapest
// solution meeting the bound when one exists, and a defined zero value
// with ok=false when none does — including the empty frontier, which
// used to dereference nil.
func TestSelectByBoundTable(t *testing.T) {
	frontier := func(points ...[2]float64) *Result {
		r := &Result{}
		for _, p := range points {
			var s Sig
			s.Cost = p[0]
			s.D[0] = p[1]
			r.Frontier = append(r.Frontier, FrontierSol{Sig: s})
		}
		return r
	}
	// Cost-sorted, arrival-decreasing curve as Solve produces.
	curve := frontier([2]float64{5, 12}, [2]float64{6, 10}, [2]float64{9, 7})
	tests := []struct {
		name     string
		r        *Result
		bound    float64
		wantCost float64
		wantOK   bool
	}{
		{"loose bound picks cheapest", curve, 12, 5, true},
		{"tight bound pays for speed", curve, 10, 6, true},
		{"exact bound is inclusive", curve, 7, 9, true},
		{"unachievable bound", curve, 6.5, 0, false},
		{"empty frontier", frontier(), 100, 0, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			sel, ok := tc.r.SelectByBound(tc.bound)
			if ok != tc.wantOK {
				t.Fatalf("ok = %v, want %v", ok, tc.wantOK)
			}
			if !ok {
				if sel != (FrontierSol{}) {
					t.Errorf("no-solution select = %+v, want zero FrontierSol", sel)
				}
				return
			}
			if sel.Sig.Cost != tc.wantCost {
				t.Errorf("selected cost %v, want %v", sel.Sig.Cost, tc.wantCost)
			}
		})
	}

	if f, ok := curve.SelectFastest(); !ok || f.Sig.D[0] != 7 {
		t.Errorf("SelectFastest = (%v,%v), want arrival 7", f.Sig.D[0], ok)
	}
	if f, ok := frontier().SelectFastest(); ok || f != (FrontierSol{}) {
		t.Errorf("SelectFastest on empty frontier = (%+v,%v), want zero,false", f, ok)
	}
}
