package embed

import (
	"math"
	"math/rand"
	"testing"
)

// These tests pin the tentpole guarantee of the parallel solver: at any
// Parallelism setting the result — frontier, every per-vertex solution
// set, and every extracted embedding — is bit-identical to the serial
// DP. The merge order of join shards and the level scheduler must not
// leak into the output.

// solveBoth solves the same problem serially and with the given worker
// counts and checks full result equality.
func solveBoth(t *testing.T, name string, p *Problem, workerCounts ...int) {
	t.Helper()
	serial := *p
	serial.Parallelism = 1
	want, err := serial.Solve()
	if err != nil {
		t.Fatalf("%s: serial solve: %v", name, err)
	}
	for _, w := range workerCounts {
		par := *p
		par.Parallelism = w
		got, err := par.Solve()
		if err != nil {
			t.Fatalf("%s: parallel(%d) solve: %v", name, w, err)
		}
		resultsEqual(t, name, w, p, want, got)
	}
}

func resultsEqual(t *testing.T, name string, workers int, p *Problem, want, got *Result) {
	t.Helper()
	if len(want.Frontier) != len(got.Frontier) {
		t.Fatalf("%s[w=%d]: frontier size %d vs serial %d",
			name, workers, len(got.Frontier), len(want.Frontier))
	}
	for i := range want.Frontier {
		if want.Frontier[i].Sig != got.Frontier[i].Sig ||
			want.Frontier[i].Vertex != got.Frontier[i].Vertex {
			t.Fatalf("%s[w=%d]: frontier[%d] = %+v, serial %+v",
				name, workers, i, got.Frontier[i], want.Frontier[i])
		}
	}
	// Every accepted solution set, node by node and vertex by vertex —
	// this covers intermediate DP state, not just the root.
	for id := range p.T.Nodes {
		for v := Vertex(0); v < Vertex(p.G.NumVertices()); v++ {
			ws := want.SolutionsAt(NodeID(id), v)
			gs := got.SolutionsAt(NodeID(id), v)
			if len(ws) != len(gs) {
				t.Fatalf("%s[w=%d]: |A[%d][%d]| = %d, serial %d",
					name, workers, id, v, len(gs), len(ws))
			}
			for k := range ws {
				if ws[k] != gs[k] {
					t.Fatalf("%s[w=%d]: A[%d][%d][%d] = %+v, serial %+v",
						name, workers, id, v, k, gs[k], ws[k])
				}
			}
		}
	}
	// Extraction retraces provenance (joinRef/child indices), so this
	// verifies the shard-merge rebasing, not just the signatures.
	for i := range want.Frontier {
		we := want.Extract(want.Frontier[i])
		ge := got.Extract(got.Frontier[i])
		if we.WireCost != ge.WireCost {
			t.Fatalf("%s[w=%d]: extract[%d] wire %v, serial %v",
				name, workers, i, ge.WireCost, we.WireCost)
		}
		for id := range we.NodeVertex {
			if we.NodeVertex[id] != ge.NodeVertex[id] {
				t.Fatalf("%s[w=%d]: extract[%d] node %d at %d, serial %d",
					name, workers, i, id, ge.NodeVertex[id], we.NodeVertex[id])
			}
			if len(we.Routes[id]) != len(ge.Routes[id]) {
				t.Fatalf("%s[w=%d]: extract[%d] route %d length %d, serial %d",
					name, workers, i, id, len(ge.Routes[id]), len(we.Routes[id]))
			}
			for k := range we.Routes[id] {
				if we.Routes[id][k] != ge.Routes[id][k] {
					t.Fatalf("%s[w=%d]: extract[%d] route %d hop %d = %d, serial %d",
						name, workers, i, id, k, ge.Routes[id][k], we.Routes[id][k])
				}
			}
		}
	}
}

// TestSolveParallelWorkedExample runs the paper's Fig. 7 worked example
// at several worker counts.
func TestSolveParallelWorkedExample(t *testing.T) {
	g := lineGraph(5)
	tree := &Tree{
		Nodes: []Node{
			{Vertex: 0, Arr: 0},
			{Children: []NodeID{0}, Intrinsic: 1},
			{Children: []NodeID{1}, Vertex: 4, Intrinsic: 1},
		},
		Root: 2,
	}
	p := &Problem{
		G:    g,
		T:    tree,
		Mode: Mode{LexDepth: 1, Delay: QuadraticDelay},
		PlaceCost: func(node NodeID, v Vertex) float64 {
			if node == 2 {
				return 0
			}
			if v == 0 || v == 4 {
				return math.Inf(1)
			}
			return float64(v)
		},
	}
	solveBoth(t, "worked-example", p, 2, 3, 8)
}

// randomProblem builds a seeded random instance: a random tree of
// leaves and gates over a unit grid, random leaf locations and arrival
// skews, and a deterministic pseudo-random placement cost.
func randomProblem(seed int64, w, h, leaves int, mode Mode, freeRoot bool) *Problem {
	rng := rand.New(rand.NewSource(seed))
	g := NewGrid(GridSpec{W: w, H: h, WireCost: 1, WireDelay: 1})
	nv := g.NumVertices()

	var nodes []Node
	var open []NodeID // roots of already-built subtrees
	for i := 0; i < leaves; i++ {
		nodes = append(nodes, Node{
			Vertex:   Vertex(rng.Intn(nv)),
			Arr:      float64(rng.Intn(6)),
			Critical: i == 0 && mode.MC,
		})
		open = append(open, NodeID(i))
	}
	// Combine random subtree groups under new gates until one remains.
	for len(open) > 1 {
		k := 1 + rng.Intn(2) // 1- or 2-input gates
		if k > len(open) {
			k = len(open)
		}
		var kids []NodeID
		for j := 0; j < k; j++ {
			pick := rng.Intn(len(open))
			kids = append(kids, open[pick])
			open[pick] = open[len(open)-1]
			open = open[:len(open)-1]
		}
		nodes = append(nodes, Node{Children: kids, Intrinsic: 1})
		open = append(open, NodeID(len(nodes)-1))
	}
	// The last gate becomes the root; fix it unless testing free roots.
	root := open[0]
	if int(root) < leaves {
		// Degenerate single-leaf draw: add a root gate above it.
		nodes = append(nodes, Node{Children: []NodeID{root}, Intrinsic: 1})
		root = NodeID(len(nodes) - 1)
	}
	if freeRoot {
		nodes[root].Vertex = -1
	} else {
		nodes[root].Vertex = Vertex(rng.Intn(nv))
	}

	// Pseudo-random but pure placement cost table.
	costs := make([]float64, len(nodes)*nv)
	for i := range costs {
		costs[i] = float64(rng.Intn(8)) * 0.5
	}
	p := &Problem{
		G:    g,
		T:    &Tree{Nodes: nodes, Root: root},
		Mode: mode,
		PlaceCost: func(node NodeID, v Vertex) float64 {
			return costs[int(node)*nv+int(v)]
		},
	}
	if mode.OverlapControl {
		p.Capacity = func(v Vertex) int { return 1 }
	}
	return p
}

// TestSolveParallelRandomized sweeps seeded random instances across all
// signature modes, comparing every worker count against serial.
func TestSolveParallelRandomized(t *testing.T) {
	modes := []struct {
		name string
		mode Mode
	}{
		{"2d", Mode{LexDepth: 1}},
		{"quad", Mode{LexDepth: 1, Delay: QuadraticDelay}},
		{"elmore", Mode{LexDepth: 1, Delay: ElmoreDelay}},
		{"lex3", Mode{LexDepth: 3}},
		{"lexmc", Mode{LexDepth: 1, MC: true}},
		{"overlap", Mode{LexDepth: 1, OverlapControl: true}},
	}
	seeds := []int64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, m := range modes {
		for _, seed := range seeds {
			p := randomProblem(seed, 6, 6, 3+int(seed)%3, m.mode, false)
			solveBoth(t, m.name, p, 2, 4)
		}
	}
}

// TestSolveParallelFreeRoot covers the FF-relocation join, where the
// root joins at every vertex — the widest fan-out the parallel merge
// has to reassemble in order.
func TestSolveParallelFreeRoot(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		p := randomProblem(seed, 6, 6, 4, Mode{LexDepth: 1}, true)
		solveBoth(t, "free-root", p, 2, 4, 7)
	}
}

// TestSolveParallelCapped checks determinism under MaxPerVertex/
// DelayQuantum trimming, which prunes by list position and so is the
// most order-sensitive configuration.
func TestSolveParallelCapped(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		p := randomProblem(seed, 7, 7, 5, Mode{LexDepth: 2}, false)
		p.MaxPerVertex = 4
		p.DelayQuantum = 0.5
		solveBoth(t, "capped", p, 2, 4)
	}
}
