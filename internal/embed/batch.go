package embed

import (
	"context"
	"sync"
)

// SolveBatch runs several independent embedding problems through one
// shared wavefront pass: a single pool of workers consumes a global
// ready queue of (problem, node) tasks, so small trees from the same
// design share scheduling overhead and pooled scratch arenas instead
// of each paying a full Solve setup/teardown.
//
// Determinism: every node is processed with par = 1 (the serial
// processNode path) and every root join with finish(1), so each
// problem's frontier is bit-identical to p.SolveContext(ctx) run
// alone — only the interleaving across problems changes, and no DP
// state is shared between problems. The oracle's batch check pins
// this equivalence.
//
// The returned slices are parallel to probs: results[i] or errs[i] is
// set for every input. A cancelled context surfaces as ctx.Err() on
// every problem that had not finished. workers <= 1 degenerates to a
// sequential loop of SolveContext calls.
func SolveBatch(ctx context.Context, probs []*Problem, workers int) ([]*Result, []error) {
	results := make([]*Result, len(probs))
	errs := make([]error, len(probs))
	if workers <= 1 || len(probs) == 1 {
		for i, p := range probs {
			results[i], errs[i] = p.SolveContext(ctx)
		}
		return results, errs
	}

	// Per-problem DP state plus the dependency bookkeeping the shared
	// queue needs: how many children of each node are still pending,
	// and who the parent is (the Tree stores only Children links).
	type pstate struct {
		r       *Result
		pending []int32
		parent  []NodeID
	}
	states := make([]*pstate, len(probs))

	type task struct {
		p    int
		node NodeID // -1 means "run finish for problem p"
	}
	var (
		mu          sync.Mutex
		cond        = sync.NewCond(&mu)
		ready       []task
		outstanding int // tasks not yet completed, including not-yet-ready ones
	)

	for i, p := range probs {
		if err := p.T.Validate(p.G.NumVertices()); err != nil {
			errs[i] = err
			continue
		}
		r := &Result{p: p, ctx: ctx, sols: make([]nodeSols, len(p.T.Nodes))}
		for j := range r.sols {
			//replint:ignore hotalloc -- one-time per-node table setup before the DP starts, not per-pop work
			r.sols[j].at = make([][]solution, p.G.NumVertices())
		}
		st := &pstate{
			r:       r,
			pending: make([]int32, len(p.T.Nodes)),
			parent:  make([]NodeID, len(p.T.Nodes)),
		}
		for id := range p.T.Nodes {
			st.pending[id] = int32(len(p.T.Nodes[id].Children))
			for _, c := range p.T.Nodes[id].Children {
				st.parent[c] = NodeID(id)
			}
		}
		states[i] = st
		// Seed: leaves (pending 0) are immediately ready; the root is
		// never a node task — it joins in finish once its children are
		// done. A root-only tree goes straight to finish.
		outstanding++ // the finish task
		for id := range p.T.Nodes {
			if NodeID(id) == p.T.Root {
				continue
			}
			outstanding++
			if st.pending[id] == 0 {
				ready = append(ready, task{p: i, node: NodeID(id)})
			}
		}
		if st.pending[p.T.Root] == 0 && len(p.T.Nodes) == 1 {
			ready = append(ready, task{p: i, node: -1})
		}
	}
	if outstanding == 0 {
		return results, errs
	}
	if workers > outstanding {
		workers = outstanding
	}

	work := func() {
		sc := getScratch()
		defer putScratch(sc)
		for {
			mu.Lock()
			//replint:ignore ctxstride -- cancellation drains through the task graph: aborted node tasks still complete and decrement outstanding, so this wait is woken promptly after ctx is done
			for len(ready) == 0 && outstanding > 0 {
				cond.Wait()
			}
			if len(ready) == 0 {
				mu.Unlock()
				return
			}
			t := ready[0]
			ready = ready[1:]
			mu.Unlock()

			st := states[t.p]
			if t.node < 0 {
				// Root join + frontier for a completed problem. finish(1)
				// keeps the serial code path; results for distinct t.p are
				// disjoint slots, written under mu for publication.
				res, err := st.r.finish(1)
				mu.Lock()
				results[t.p], errs[t.p] = res, err
				outstanding--
				if outstanding == 0 {
					cond.Broadcast()
				}
				mu.Unlock()
				continue
			}

			// Serial per-node DP: identical to the workers==1 path of
			// SolveContext. Cancellation is polled inside; an aborted
			// node still completes its task so the dependency chain
			// drains and finish reports ctx.Err().
			st.r.processNode(t.node, 1, sc)

			parent := st.parent[t.node]
			mu.Lock()
			outstanding--
			st.pending[parent]--
			if st.pending[parent] == 0 {
				if parent == st.r.p.T.Root {
					ready = append(ready, task{p: t.p, node: -1})
				} else {
					ready = append(ready, task{p: t.p, node: parent})
				}
				cond.Signal()
			}
			if outstanding == 0 {
				cond.Broadcast()
			}
			mu.Unlock()
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
	return results, errs
}
