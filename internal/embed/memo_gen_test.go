package embed

import "testing"

// TestCacheGen pins the generation-counter contract the stalegen
// annotations promise: Gen advances exactly when the retained set (m,
// fifo) changes — on admission and reset — and never on doorkeeper-only
// Puts, duplicate Puts, or Gets.
func TestCacheGen(t *testing.T) {
	fp := func(i uint64) Fingerprint { return Fingerprint{Hi: i, Lo: ^i} }
	c := NewCache(2)
	if c.Gen() != 0 {
		t.Fatalf("fresh cache Gen = %d, want 0", c.Gen())
	}

	r := &Result{}
	c.Put(fp(1), r) // first sighting: doorkeeper only
	if c.Gen() != 0 {
		t.Errorf("doorkeeper-only Put advanced Gen to %d", c.Gen())
	}
	c.Put(fp(1), r) // second sighting: admitted
	if c.Gen() != 1 {
		t.Errorf("admission left Gen at %d, want 1", c.Gen())
	}
	if _, ok := c.Get(fp(1)); !ok {
		t.Fatal("admitted entry not retrievable")
	}
	if c.Gen() != 1 {
		t.Errorf("Get advanced Gen to %d", c.Gen())
	}
	c.Put(fp(1), r) // already retained: no-op
	if c.Gen() != 1 {
		t.Errorf("duplicate Put advanced Gen to %d", c.Gen())
	}

	// Fill to capacity and evict: each admission is one bump, including
	// the evicting one.
	c.Put(fp(2), r)
	c.Put(fp(2), r)
	c.Put(fp(3), r)
	c.Put(fp(3), r) // evicts fp(1)
	if c.Gen() != 3 {
		t.Errorf("after two more admissions Gen = %d, want 3", c.Gen())
	}
	if _, ok := c.Get(fp(1)); ok {
		t.Error("evicted entry still retrievable")
	}

	before := c.Gen()
	c.Reset()
	if c.Gen() != before+1 {
		t.Errorf("Reset moved Gen %d -> %d, want +1", before, c.Gen())
	}
	if _, ok := c.Get(fp(3)); ok {
		t.Error("Reset left an entry retrievable")
	}
}
