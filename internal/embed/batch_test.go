package embed

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// batchMix builds a mixed bag of randomized problems spanning the
// signature modes, the shapes SolveBatch must keep independent.
func batchMix(seed int64, k int) []*Problem {
	modes := []Mode{
		{LexDepth: 1},
		{LexDepth: 1, Delay: QuadraticDelay},
		{LexDepth: 3},
		{LexDepth: 1, MC: true},
		{LexDepth: 1, OverlapControl: true},
	}
	rng := rand.New(rand.NewSource(seed))
	probs := make([]*Problem, k)
	for i := range probs {
		m := modes[rng.Intn(len(modes))]
		probs[i] = randomProblem(seed*100+int64(i), 5+rng.Intn(2), 5, 3+rng.Intn(3), m, rng.Intn(5) == 0)
	}
	return probs
}

// TestSolveBatchMatchesSolo pins the batch determinism guarantee: each
// problem's result from the shared wavefront pass is bit-identical to
// solving it alone, at every worker count, for every position in the
// batch.
func TestSolveBatchMatchesSolo(t *testing.T) {
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		probs := batchMix(int64(trial+1), 3+trial%4)
		want := make([]*Result, len(probs))
		werr := make([]error, len(probs))
		for i, p := range probs {
			want[i], werr[i] = p.Solve()
		}
		for _, workers := range []int{1, 2, 4, 7} {
			got, errs := SolveBatch(context.Background(), probs, workers)
			for i := range probs {
				if (werr[i] == nil) != (errs[i] == nil) {
					t.Fatalf("trial %d[w=%d] problem %d: batch err %v, solo err %v",
						trial, workers, i, errs[i], werr[i])
				}
				if werr[i] != nil {
					if errs[i].Error() != werr[i].Error() {
						t.Fatalf("trial %d[w=%d] problem %d: batch err %q, solo err %q",
							trial, workers, i, errs[i], werr[i])
					}
					continue
				}
				resultsEqual(t, "batch", workers, probs[i], want[i], got[i])
			}
		}
	}
}

// TestSolveBatchIsolatesFailures checks a malformed problem in the
// middle of a batch fails alone: its slot gets the validation error,
// every other slot still solves bit-identically to solo.
func TestSolveBatchIsolatesFailures(t *testing.T) {
	probs := batchMix(42, 4)
	bad := randomProblem(43, 5, 5, 3, Mode{LexDepth: 1}, false)
	bad.T.Nodes[0].Children = append(bad.T.Nodes[0].Children, NodeID(len(bad.T.Nodes)+5)) // dangling child
	probs = append(probs[:2:2], append([]*Problem{bad}, probs[2:]...)...)

	got, errs := SolveBatch(context.Background(), probs, 4)
	if errs[2] == nil {
		t.Fatal("malformed problem accepted by batch solve")
	}
	if got[2] != nil {
		t.Fatal("malformed problem produced a result")
	}
	for i, p := range probs {
		if i == 2 {
			continue
		}
		want, werr := p.Solve()
		if (werr == nil) != (errs[i] == nil) {
			t.Fatalf("problem %d: batch err %v, solo err %v", i, errs[i], werr)
		}
		if werr == nil {
			resultsEqual(t, "isolate", 4, p, want, got[i])
		}
	}
}

// TestSolveBatchCancelled checks a cancelled context surfaces as
// ctx.Err() on every unfinished problem and leaks no goroutines (the
// -race run would flag unsynchronized stragglers).
func TestSolveBatchCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	probs := batchMix(7, 5)
	got, errs := SolveBatch(ctx, probs, 4)
	for i := range probs {
		if !errors.Is(errs[i], context.Canceled) {
			t.Fatalf("problem %d: err %v, want context.Canceled", i, errs[i])
		}
		if got[i] != nil {
			t.Fatalf("problem %d: cancelled batch returned a partial result", i)
		}
	}
}

// TestSolveBatchEmpty pins the trivial shapes: no problems, and a
// single problem (which degenerates to the solo path).
func TestSolveBatchEmpty(t *testing.T) {
	got, errs := SolveBatch(context.Background(), nil, 4)
	if len(got) != 0 || len(errs) != 0 {
		t.Fatalf("empty batch returned %d results, %d errors", len(got), len(errs))
	}
	p := randomProblem(9, 5, 5, 3, Mode{LexDepth: 1}, false)
	want, werr := p.Solve()
	if werr != nil {
		t.Fatal(werr)
	}
	got, errs = SolveBatch(context.Background(), []*Problem{p}, 4)
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	resultsEqual(t, "single", 4, p, want, got[0])
}
