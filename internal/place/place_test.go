package place

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/netlist"
	"repro/internal/timing"
	"repro/internal/wire"
)

// randomCircuit builds a deterministic random layered circuit with the
// given LUT and IO counts.
func randomCircuit(t *testing.T, seed int64, luts, inputs, outputs int) *netlist.Netlist {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := netlist.New("rand")
	var signals []string
	for i := 0; i < inputs; i++ {
		name := "i" + itoa(i)
		n.AddCell(name, netlist.IPad, 0)
		signals = append(signals, name)
	}
	for i := 0; i < luts; i++ {
		name := "l" + itoa(i)
		k := 1 + rng.Intn(3)
		if k > len(signals) {
			k = len(signals)
		}
		c := n.AddCell(name, netlist.LUT, k)
		for p := 0; p < k; p++ {
			// Bias toward recent signals for locality.
			idx := len(signals) - 1 - rng.Intn(min(len(signals), 12))
			n.ConnectByName(c.ID, p, signals[idx])
		}
		signals = append(signals, name)
	}
	for i := 0; i < outputs; i++ {
		c := n.AddCell("o"+itoa(i), netlist.OPad, 1)
		idx := len(signals) - 1 - rng.Intn(min(len(signals), luts))
		n.ConnectByName(c.ID, 0, signals[idx])
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	return n
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fastOpts(seed int64) Options {
	o := Defaults()
	o.Seed = seed
	o.Effort = 1 // keep unit tests quick
	return o
}

func TestPlaceValidAndLegal(t *testing.T) {
	nl := randomCircuit(t, 7, 60, 8, 8)
	f := arch.MinSquare(nl.NumLUTs(), nl.NumIOs())
	pl, err := Place(nl, f, fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(nl); err != nil {
		t.Fatalf("placement invalid: %v", err)
	}
	if !pl.Legal() {
		t.Fatal("placement over capacity")
	}
}

func TestPlaceDeterministic(t *testing.T) {
	nl := randomCircuit(t, 7, 40, 6, 6)
	f := arch.MinSquare(nl.NumLUTs(), nl.NumIOs())
	p1, err := Place(nl, f, fastOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Place(nl, f, fastOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	nl.Cells(func(c *netlist.Cell) {
		if p1.Loc(c.ID) != p2.Loc(c.ID) {
			same = false
		}
	})
	if !same {
		t.Error("same seed must give identical placements")
	}
	p3, err := Place(nl, f, fastOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	nl.Cells(func(c *netlist.Cell) {
		if p1.Loc(c.ID) != p3.Loc(c.ID) {
			diff = true
		}
	})
	if !diff {
		t.Error("different seeds should give different placements")
	}
}

func TestPlaceBeatsRandom(t *testing.T) {
	nl := randomCircuit(t, 11, 80, 10, 10)
	f := arch.MinSquare(nl.NumLUTs(), nl.NumIOs())
	// Random baseline: the annealer's own initial scatter.
	s := newState(nl, f, fastOpts(5))
	s.initialRandom()
	randomWire := wire.TotalCost(nl, s.pl)
	ra, err := timing.Analyze(nl, s.pl, s.opt.Delay)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Place(nl, f, fastOpts(5))
	if err != nil {
		t.Fatal(err)
	}
	annealedWire := wire.TotalCost(nl, pl)
	aa, err := timing.Analyze(nl, pl, s.opt.Delay)
	if err != nil {
		t.Fatal(err)
	}
	if annealedWire >= randomWire {
		t.Errorf("annealed wire %v not better than random %v", annealedWire, randomWire)
	}
	if aa.Period >= ra.Period {
		t.Errorf("annealed period %v not better than random %v", aa.Period, ra.Period)
	}
}

func TestTimingDrivenBeatsWireDrivenOnDelay(t *testing.T) {
	nl := randomCircuit(t, 13, 100, 10, 10)
	f := arch.MinSquare(nl.NumLUTs(), nl.NumIOs())
	dm := Defaults().Delay

	bestTD, bestWD := 1e18, 1e18
	// Annealing is noisy at Effort 1; compare best-of-3.
	for seed := int64(1); seed <= 3; seed++ {
		td := fastOpts(seed)
		plTD, err := Place(nl, f, td)
		if err != nil {
			t.Fatal(err)
		}
		aTD, _ := timing.Analyze(nl, plTD, dm)
		if aTD.Period < bestTD {
			bestTD = aTD.Period
		}
		wd := fastOpts(seed)
		wd.Lambda = 0
		plWD, err := Place(nl, f, wd)
		if err != nil {
			t.Fatal(err)
		}
		aWD, _ := timing.Analyze(nl, plWD, dm)
		if aWD.Period < bestWD {
			bestWD = aWD.Period
		}
	}
	if bestTD > bestWD {
		t.Errorf("timing-driven period %v worse than wire-driven %v", bestTD, bestWD)
	}
}

func TestPlaceTooBigFails(t *testing.T) {
	nl := randomCircuit(t, 7, 30, 4, 4)
	f := arch.New(3) // 9 logic slots for 30 LUTs
	if _, err := Place(nl, f, fastOpts(1)); err == nil {
		t.Error("expected capacity error")
	}
}

func TestPadsStayOnRing(t *testing.T) {
	nl := randomCircuit(t, 19, 50, 12, 12)
	f := arch.MinSquare(nl.NumLUTs(), nl.NumIOs())
	pl, err := Place(nl, f, fastOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	nl.Cells(func(c *netlist.Cell) {
		l := pl.Loc(c.ID)
		if c.Kind == netlist.LUT && !f.IsLogic(l) {
			t.Errorf("LUT %s on non-logic slot %v", c.Name, l)
		}
		if c.Kind != netlist.LUT && !f.IsIO(l) {
			t.Errorf("pad %s off the IO ring at %v", c.Name, l)
		}
	})
}
