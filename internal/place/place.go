// Package place is a VPR-style simulated-annealing FPGA placer — the
// substrate the paper starts from ("we begin from a valid
// timing-driven placement produced by VPR"). It implements the
// T-VPlace algorithm of Marquardt, Betz, and Rose ("Timing-driven
// placement for FPGAs", FPGA 2000): a bounding-box wire cost with
// net-size correction, a criticality-weighted connection-delay timing
// cost, the adaptive annealing schedule of VPR, and a shrinking move
// range limit. A wirelength-driven mode (λ = 0) is included because
// the local-replication baseline of Beraudo and Lillis was originally
// evaluated against it.
package place

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/timing"
	"repro/internal/wire"
)

// Options configures a placement run.
type Options struct {
	// Seed drives all randomized decisions; equal seeds give equal
	// placements.
	Seed int64
	// Lambda is the timing/wirelength tradeoff (VPR default 0.5);
	// 0 gives a pure wirelength-driven placement.
	Lambda float64
	// CritExp is the criticality exponent (VPR uses up to 8).
	CritExp float64
	// Effort scales the moves per temperature
	// (moves = Effort · cells^(4/3); VPR uses 10).
	Effort float64
	// Delay is the placement delay model.
	Delay arch.DelayModel
}

// Defaults returns the timing-driven defaults used by the experiments.
func Defaults() Options {
	return Options{
		Seed:    1,
		Lambda:  0.5,
		CritExp: 8,
		Effort:  10,
		Delay:   arch.DefaultDelayModel(),
	}
}

// Place anneals a placement of nl onto f.
func Place(nl *netlist.Netlist, f *arch.FPGA, opt Options) (*placement.Placement, error) {
	return PlaceContext(context.Background(), nl, f, opt)
}

// PlaceContext is Place under cooperative cancellation: the annealer
// polls ctx every ctxCheckStride moves and returns ctx.Err() with no
// placement. An uncancelled run is bit-identical to Place.
func PlaceContext(ctx context.Context, nl *netlist.Netlist, f *arch.FPGA, opt Options) (*placement.Placement, error) {
	if nl.NumLUTs() > f.LogicCapacity() || nl.NumIOs() > f.IOCapacity() {
		return nil, fmt.Errorf("place: %s does not fit on %v", nl.Name, f)
	}
	if opt.Effort <= 0 {
		opt.Effort = 10
	}
	s := newState(nl, f, opt)
	s.ctx = ctx
	s.initialRandom()
	if err := s.anneal(); err != nil {
		return nil, err
	}
	return s.pl, nil
}

// ctxCheckStride amortizes the cancellation poll: one atomic-ish ctx
// check per this many annealing moves.
const ctxCheckStride = 1024

// state carries one annealing run.
type state struct {
	nl  *netlist.Netlist
	f   *arch.FPGA
	pl  *placement.Placement
	opt Options
	rng *rand.Rand
	ctx context.Context // non-nil via PlaceContext

	luts []netlist.CellID
	pads []netlist.CellID

	// Per-net wire cost cache and totals.
	netCost   []float64
	wireTotal float64

	// Timing state, refreshed once per temperature.
	crit        []float64 // per-cell *input* criticality^exp (max over input edges)
	arr         []float64 // cached arrival times
	tail        []float64 // delay from a cell's output to any path end, excluding wire to its first hop
	timingTotal float64
	edgeCost    map[edgeKey]float64
}

type edgeKey struct {
	u, v netlist.CellID
}

func newState(nl *netlist.Netlist, f *arch.FPGA, opt Options) *state {
	s := &state{
		nl:  nl,
		f:   f,
		pl:  placement.New(f, nl),
		opt: opt,
		rng: rand.New(rand.NewSource(opt.Seed)),
	}
	nl.Cells(func(c *netlist.Cell) {
		if c.Kind == netlist.LUT {
			s.luts = append(s.luts, c.ID)
		} else {
			s.pads = append(s.pads, c.ID)
		}
	})
	return s
}

// initialRandom scatters cells uniformly (a random permutation of the
// free slots), VPR's starting point.
func (s *state) initialRandom() {
	logic := s.f.LogicSlots()
	s.rng.Shuffle(len(logic), func(i, j int) { logic[i], logic[j] = logic[j], logic[i] })
	for i, id := range s.luts {
		s.pl.Place(id, logic[i])
	}
	// IO slots hold IORat pads each; expand to pad capacity.
	var ioSlots []arch.Loc
	for _, l := range s.f.IOSlots() {
		for k := 0; k < s.f.IORat; k++ {
			ioSlots = append(ioSlots, l)
		}
	}
	s.rng.Shuffle(len(ioSlots), func(i, j int) { ioSlots[i], ioSlots[j] = ioSlots[j], ioSlots[i] })
	for i, id := range s.pads {
		s.pl.Place(id, ioSlots[i])
	}
}

// refreshWire recomputes all net costs from scratch.
func (s *state) refreshWire() {
	s.netCost = make([]float64, s.nl.NetCap())
	s.wireTotal = 0
	s.nl.Nets(func(n *netlist.Net) {
		c := wire.NetCost(s.nl, s.pl, n.ID, nil)
		s.netCost[n.ID] = c
		s.wireTotal += c
	})
}

// refreshTiming runs STA and rebuilds per-edge criticalities and the
// timing cost total. Criticality of connection (u,v) is
// (path through the edge / Dmax)^CritExp, equivalent to VPR's
// (1 - slack/Dmax)^exp.
func (s *state) refreshTiming() error {
	a, err := timing.Analyze(s.nl, s.pl, s.opt.Delay)
	if err != nil {
		return err
	}
	s.arr = a.Arr
	s.tail = make([]float64, s.nl.Cap())
	s.crit = make([]float64, s.nl.Cap())
	s.edgeCost = make(map[edgeKey]float64, s.nl.Cap()*2)
	s.timingTotal = 0
	nl := s.nl
	dmax := a.Period
	nl.Cells(func(vc *netlist.Cell) {
		v := vc.ID
		// tail[v]: delay added after a signal reaches v's input.
		if vc.IsSink() {
			s.tail[v] = timing.Intrinsic(s.opt.Delay, vc)
		}
		if !vc.IsSink() || vc.IsSource() {
			if !math.IsInf(a.Down[v], -1) {
				t := s.opt.Delay.LUTDelay + a.Down[v]
				if vc.Kind != netlist.LUT {
					t = a.Down[v] // pads add no logic delay on the source side
				}
				if t > s.tail[v] {
					s.tail[v] = t
				}
			}
		}
	})
	nl.Cells(func(vc *netlist.Cell) {
		v := vc.ID
		for _, net := range vc.Fanin {
			if net == netlist.None {
				continue
			}
			u := nl.Net(net).Driver
			d := s.opt.Delay.WireDelay(arch.Dist(s.pl.Loc(u), s.pl.Loc(v)))
			through := a.Arr[u] + d + s.tail[v]
			crit := through / dmax
			if crit > 1 {
				crit = 1
			}
			if crit < 0 {
				crit = 0
			}
			w := math.Pow(crit, s.opt.CritExp)
			if w > s.crit[v] {
				s.crit[v] = w
			}
			cost := w * d
			s.edgeCost[edgeKey{u, v}] = cost
			s.timingTotal += cost
		}
	})
	return nil
}

// anneal runs the adaptive VPR schedule.
func (s *state) anneal() error {
	if err := s.refreshTiming(); err != nil {
		return err
	}
	s.refreshWire()

	n := len(s.luts) + len(s.pads)
	movesPerTemp := int(s.opt.Effort * math.Pow(float64(n), 4.0/3.0))
	if movesPerTemp < 32 {
		movesPerTemp = 32
	}
	rlim := float64(s.f.N)

	// Initial temperature: 20 × the standard deviation of the cost of
	// n random moves (VPR).
	t := s.initialTemperature(n)

	for {
		wirePrev := math.Max(s.wireTotal, 1e-9)
		timingPrev := math.Max(s.timingTotal, 1e-9)
		accepted := 0
		for m := 0; m < movesPerTemp; m++ {
			if m%ctxCheckStride == 0 && s.ctx != nil && s.ctx.Err() != nil {
				return s.ctx.Err()
			}
			if s.tryMove(t, rlim, wirePrev, timingPrev) {
				accepted++
			}
		}
		raccept := float64(accepted) / float64(movesPerTemp)
		// VPR's temperature update keeps the acceptance rate near 0.44.
		switch {
		case raccept > 0.96:
			t *= 0.5
		case raccept > 0.8:
			t *= 0.9
		case raccept > 0.15 && rlim > 1.01:
			t *= 0.95
		default:
			t *= 0.8
		}
		rlim *= 1 - 0.44 + raccept
		if rlim < 1 {
			rlim = 1
		}
		if rlim > float64(s.f.N) {
			rlim = float64(s.f.N)
		}
		if err := s.refreshTiming(); err != nil {
			return err
		}
		s.refreshWire()
		// Exit criterion: VPR stops when T drops below a small fraction
		// of the cost per net; with normalized deltas (each move's ΔC
		// is a fraction of total cost) the equivalent scale is 1/nets.
		if t < 0.005/float64(s.nl.NumNets()+1) {
			break
		}
	}
	return nil
}

// initialTemperature probes n random moves and returns 20σ of their
// cost deltas.
func (s *state) initialTemperature(n int) float64 {
	wirePrev := math.Max(s.wireTotal, 1e-9)
	timingPrev := math.Max(s.timingTotal, 1e-9)
	var sum, sumSq float64
	count := 0
	for i := 0; i < n; i++ {
		d, ok := s.probeMove(float64(s.f.N), wirePrev, timingPrev)
		if !ok {
			continue
		}
		sum += d
		sumSq += d * d
		count++
	}
	if count < 2 {
		return 1
	}
	mean := sum / float64(count)
	variance := sumSq/float64(count) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return 20 * math.Sqrt(variance)
}

// probeMove evaluates a random move's delta without committing it.
func (s *state) probeMove(rlim float64, wirePrev, timingPrev float64) (float64, bool) {
	mv, ok := s.pickMove(rlim)
	if !ok {
		return 0, false
	}
	delta := s.moveDelta(mv, wirePrev, timingPrev)
	return delta, true
}

// move is a proposed relocation: cell a moves to slot to; if cell b is
// present there, it swaps into a's slot.
type move struct {
	a    netlist.CellID
	b    netlist.CellID // None when the target has spare capacity
	from arch.Loc
	to   arch.Loc
}

// pickMove selects a random cell and a random in-range, type-compatible
// target slot.
func (s *state) pickMove(rlim float64) (move, bool) {
	var id netlist.CellID
	isLUT := true
	total := len(s.luts) + len(s.pads)
	if s.rng.Intn(total) < len(s.luts) {
		id = s.luts[s.rng.Intn(len(s.luts))]
	} else {
		id = s.pads[s.rng.Intn(len(s.pads))]
		isLUT = false
	}
	from := s.pl.Loc(id)
	r := int(rlim)
	if r < 1 {
		r = 1
	}
	var to arch.Loc
	if isLUT {
		// Random logic slot within the range window.
		for try := 0; try < 8; try++ {
			dx := s.rng.Intn(2*r+1) - r
			dy := s.rng.Intn(2*r+1) - r
			to = arch.Loc{X: from.X + int16(dx), Y: from.Y + int16(dy)}
			if s.f.IsLogic(to) && to != from {
				break
			}
			to = from
		}
		if to == from {
			return move{}, false
		}
	} else {
		ios := s.f.IOSlots()
		to = ios[s.rng.Intn(len(ios))]
		if to == from {
			return move{}, false
		}
	}
	m := move{a: id, b: netlist.None, from: from, to: to}
	// Occupancy at the target: swap with a random resident if full.
	res := s.pl.At(to)
	if len(res) >= s.f.Capacity(to) && len(res) > 0 {
		m.b = res[s.rng.Intn(len(res))]
	}
	return m, true
}

// moveDelta computes the normalized cost delta of a move:
// λ·ΔT/Tprev + (1-λ)·ΔW/Wprev.
func (s *state) moveDelta(m move, wirePrev, timingPrev float64) float64 {
	override := func(id netlist.CellID) (arch.Loc, bool) {
		if id == m.a {
			return m.to, true
		}
		if m.b != netlist.None && id == m.b {
			return m.from, true
		}
		return arch.Loc{}, false
	}
	// Wire delta over the union of affected nets.
	dWire := 0.0
	for _, net := range s.affectedNets(m) {
		dWire += wire.NetCost(s.nl, s.pl, net, override) - s.netCost[net]
	}
	// Timing delta over edges touching the moved cells.
	dTiming := 0.0
	if s.opt.Lambda > 0 {
		for _, e := range s.affectedEdges(m) {
			lu, lv := s.pl.Loc(e.u), s.pl.Loc(e.v)
			if l, ok := override(e.u); ok {
				lu = l
			}
			if l, ok := override(e.v); ok {
				lv = l
			}
			newDelay := s.opt.Delay.WireDelay(arch.Dist(lu, lv))
			w := s.crit[e.v]
			dTiming += w*newDelay - s.edgeCost[e]
		}
	}
	return s.opt.Lambda*dTiming/timingPrev + (1-s.opt.Lambda)*dWire/wirePrev
}

// tryMove proposes, evaluates, and (per Metropolis) commits one move.
func (s *state) tryMove(t, rlim, wirePrev, timingPrev float64) bool {
	m, ok := s.pickMove(rlim)
	if !ok {
		return false
	}
	delta := s.moveDelta(m, wirePrev, timingPrev)
	if delta > 0 {
		if t <= 0 {
			return false
		}
		if s.rng.Float64() >= math.Exp(-delta/t) {
			return false
		}
	}
	// Commit: update placement, net cost cache, and totals.
	s.pl.Place(m.a, m.to)
	if m.b != netlist.None {
		s.pl.Place(m.b, m.from)
	}
	for _, net := range s.affectedNets(m) {
		c := wire.NetCost(s.nl, s.pl, net, nil)
		s.wireTotal += c - s.netCost[net]
		s.netCost[net] = c
	}
	if s.opt.Lambda > 0 {
		for _, e := range s.affectedEdges(m) {
			d := s.opt.Delay.WireDelay(arch.Dist(s.pl.Loc(e.u), s.pl.Loc(e.v)))
			cost := s.crit[e.v] * d
			s.timingTotal += cost - s.edgeCost[e]
			s.edgeCost[e] = cost
		}
	}
	return true
}

// affectedNets returns the nets whose bounding box can change.
func (s *state) affectedNets(m move) []netlist.NetID {
	nets := wire.CellNets(s.nl, m.a)
	if m.b != netlist.None {
		for _, n := range wire.CellNets(s.nl, m.b) {
			dup := false
			for _, seen := range nets {
				if seen == n {
					dup = true
					break
				}
			}
			if !dup {
				nets = append(nets, n)
			}
		}
	}
	return nets
}

// affectedEdges returns the timing edges whose wire delay can change.
func (s *state) affectedEdges(m move) []edgeKey {
	var edges []edgeKey
	seen := map[edgeKey]bool{}
	collect := func(id netlist.CellID) {
		c := s.nl.Cell(id)
		for _, net := range c.Fanin {
			if net == netlist.None {
				continue
			}
			e := edgeKey{s.nl.Net(net).Driver, id}
			if !seen[e] {
				seen[e] = true
				edges = append(edges, e)
			}
		}
		if c.Out != netlist.None {
			for _, p := range s.nl.Net(c.Out).Sinks {
				e := edgeKey{id, p.Cell}
				if !seen[e] {
					seen[e] = true
					edges = append(edges, e)
				}
			}
		}
	}
	collect(m.a)
	if m.b != netlist.None {
		collect(m.b)
	}
	return edges
}
