// Package route is a negotiated-congestion (PathFinder-style) detailed
// router over a tile grid — the stand-in for VPR's router used to
// assess results post-placement, exactly as the paper's flow does
// ("we then pass it to the VPR detailed router to accurately assess
// the results"). It supports the two evaluation regimes of Table I:
//
//   - infinite-resource routing (W∞): unbounded channel capacity, the
//     placement-evaluation metric of Marquardt et al.;
//   - low-stress routing (W_ls): capacity fixed at 1.2 × Wmin, where
//     Wmin is found by binary search — "how an FPGA will be routed in
//     practice".
//
// The routing fabric is modeled as one routing node per grid tile with
// a per-tile track capacity; a net is a Steiner tree over tiles grown
// by repeated Dijkstra expansions. Congestion is negotiated with
// PathFinder's present-sharing and history costs, rip-up and reroute.
package route

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/arch"
	"repro/internal/netlist"
	"repro/internal/timing"
)

// Options tunes a routing run.
type Options struct {
	// ChannelWidth is the per-tile track capacity; 0 means infinite
	// resources (the W∞ regime).
	ChannelWidth int
	// MaxIters bounds the rip-up/reroute iterations.
	MaxIters int
	// PresFacInit/PresFacMult grow the present-congestion penalty each
	// iteration; HistFac accumulates history cost.
	PresFacInit float64
	PresFacMult float64
	HistFac     float64
	// BBoxMargin pads each net's routing region (VPR routes within the
	// net bounding box plus a margin).
	BBoxMargin int
}

// Defaults returns the router defaults.
func Defaults() Options {
	return Options{
		MaxIters:    30,
		PresFacInit: 0.5,
		PresFacMult: 1.8,
		HistFac:     1.0,
		BBoxMargin:  3,
	}
}

// Result summarizes one routing run.
type Result struct {
	// Feasible reports whether the final routing has no overused tile.
	Feasible bool
	// Iterations actually used.
	Iterations int
	// WireLength is the total tree wire length over all nets, in tile
	// steps.
	WireLength int
	// CritPath is the post-route clock period under the linear delay
	// model with routed (not Manhattan) wire lengths.
	CritPath float64
	// ConnLen maps each connection to its routed length in tiles.
	ConnLen map[Conn]int
	// TileUsage maps each tile to the number of nets routed through
	// it — the "actual channel occupancy" the paper's Section VIII
	// proposes feeding back into the embedder's wire costs.
	TileUsage map[arch.Loc]int
}

// Conn identifies a routed connection (net driver to one sink pin).
type Conn struct {
	Net  netlist.NetID
	Sink netlist.Pin
}

// router carries one run's state.
type router struct {
	nl  *netlist.Netlist
	pl  timing.Locator
	f   *arch.FPGA
	dm  arch.DelayModel
	opt Options

	w, h    int // tile grid dims: (N+2) x (N+2)
	occ     []int16
	hist    []float64
	presFac float64

	// Per-net routing trees: tile -> distance from driver.
	trees   []map[int32]int32
	connLen map[Conn]int

	// Scratch buffers for Dijkstra, sized once.
	dist    []float64
	prev    []int32
	visited []int32 // epoch marks
	epoch   int32
}

// Route routes all nets of the placed netlist.
func Route(nl *netlist.Netlist, pl timing.Locator, f *arch.FPGA, dm arch.DelayModel, opt Options) (*Result, error) {
	if opt.MaxIters <= 0 {
		opt.MaxIters = Defaults().MaxIters
	}
	if opt.PresFacInit == 0 {
		opt.PresFacInit = Defaults().PresFacInit
	}
	if opt.PresFacMult == 0 {
		opt.PresFacMult = Defaults().PresFacMult
	}
	if opt.HistFac == 0 {
		opt.HistFac = Defaults().HistFac
	}
	r := &router{
		nl: nl, pl: pl, f: f, dm: dm, opt: opt,
		w: f.N + 2, h: f.N + 2,
	}
	n := r.w * r.h
	r.occ = make([]int16, n)
	r.hist = make([]float64, n)
	r.trees = make([]map[int32]int32, nl.NetCap())
	r.dist = make([]float64, n)
	r.prev = make([]int32, n)
	r.visited = make([]int32, n)

	nets := r.netOrder()
	r.presFac = opt.PresFacInit
	res := &Result{}
	for iter := 0; iter < opt.MaxIters; iter++ {
		res.Iterations = iter + 1
		// Rip up everything and reroute under current penalties (the
		// original PathFinder formulation).
		for i := range r.occ {
			r.occ[i] = 0
		}
		r.connLen = make(map[Conn]int, len(r.connLen))
		for _, netID := range nets {
			if err := r.routeNet(netID); err != nil {
				return nil, err
			}
		}
		over := r.updateCongestion()
		if over == 0 {
			res.Feasible = true
			break
		}
		if r.infinite() {
			// Without capacity there is never overuse; defensive.
			res.Feasible = true
			break
		}
		r.presFac *= opt.PresFacMult
	}
	if r.infinite() {
		res.Feasible = true
	}
	res.ConnLen = r.connLen
	res.TileUsage = r.tileUsage()
	res.WireLength = r.totalWire()
	cp, err := r.critPath()
	if err != nil {
		return nil, err
	}
	res.CritPath = cp
	return res, nil
}

func (r *router) infinite() bool { return r.opt.ChannelWidth <= 0 }

func (r *router) cap() int {
	if r.infinite() {
		return 1 << 20
	}
	return r.opt.ChannelWidth
}

func (r *router) tile(l arch.Loc) int32 { return int32(int(l.Y)*r.w + int(l.X)) }

func (r *router) loc(t int32) arch.Loc {
	return arch.Loc{X: int16(int(t) % r.w), Y: int16(int(t) / r.w)}
}

// netOrder routes long nets first (their flexibility is lowest), a
// common PathFinder ordering; it is deterministic.
func (r *router) netOrder() []netlist.NetID {
	type entry struct {
		id   netlist.NetID
		span int
	}
	var nets []entry
	r.nl.Nets(func(n *netlist.Net) {
		if len(n.Sinks) == 0 {
			return
		}
		d := r.pl.Loc(n.Driver)
		span := 0
		for _, p := range n.Sinks {
			if dd := arch.Dist(d, r.pl.Loc(p.Cell)); dd > span {
				span = dd
			}
		}
		nets = append(nets, entry{n.ID, span})
	})
	sort.Slice(nets, func(i, j int) bool {
		if nets[i].span != nets[j].span {
			return nets[i].span > nets[j].span
		}
		return nets[i].id < nets[j].id
	})
	out := make([]netlist.NetID, len(nets))
	for i, e := range nets {
		out[i] = e.id
	}
	return out
}

// nodeCost is the PathFinder cost of using a tile: (base + history) ×
// present-sharing penalty.
func (r *router) nodeCost(t int32) float64 {
	base := 1.0 + r.hist[t]
	over := int(r.occ[t]) + 1 - r.cap()
	if over <= 0 {
		return base
	}
	return base * (1 + float64(over)*r.presFac)
}

// routeNet grows the net's Steiner tree sink by sink (nearest first).
func (r *router) routeNet(netID netlist.NetID) error {
	net := r.nl.Net(netID)
	driver := r.tile(r.pl.Loc(net.Driver))
	tree := map[int32]int32{driver: 0}
	r.trees[netID] = tree
	r.occ[driver]++

	// Region: net bounding box plus margin.
	x0, y0, x1, y1 := r.region(net)

	sinks := append([]netlist.Pin(nil), net.Sinks...)
	dl := r.pl.Loc(net.Driver)
	sort.Slice(sinks, func(i, j int) bool {
		di := arch.Dist(dl, r.pl.Loc(sinks[i].Cell))
		dj := arch.Dist(dl, r.pl.Loc(sinks[j].Cell))
		if di != dj {
			return di < dj
		}
		if sinks[i].Cell != sinks[j].Cell {
			return sinks[i].Cell < sinks[j].Cell
		}
		return sinks[i].Input < sinks[j].Input
	})
	for _, p := range sinks {
		target := r.tile(r.pl.Loc(p.Cell))
		if _, onTree := tree[target]; onTree {
			r.connLen[Conn{netID, p}] = int(tree[target])
			continue
		}
		if err := r.connect(netID, tree, target, x0, y0, x1, y1); err != nil {
			return fmt.Errorf("route: net %s sink %v: %w", net.Name, p, err)
		}
		r.connLen[Conn{netID, p}] = int(tree[target])
	}
	return nil
}

func (r *router) region(net *netlist.Net) (x0, y0, x1, y1 int) {
	l := r.pl.Loc(net.Driver)
	x0, x1, y0, y1 = int(l.X), int(l.X), int(l.Y), int(l.Y)
	for _, p := range net.Sinks {
		sl := r.pl.Loc(p.Cell)
		x0 = min(x0, int(sl.X))
		x1 = max(x1, int(sl.X))
		y0 = min(y0, int(sl.Y))
		y1 = max(y1, int(sl.Y))
	}
	m := r.opt.BBoxMargin
	return max(0, x0-m), max(0, y0-m), min(r.w-1, x1+m), min(r.h-1, y1+m)
}

// pqItem is a Dijkstra frontier entry.
type pqItem struct {
	cost float64
	tile int32
}
type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].cost < q[j].cost }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// connect runs a multi-source Dijkstra from the current tree to the
// target tile and commits the found path to the tree.
func (r *router) connect(netID netlist.NetID, tree map[int32]int32, target int32, x0, y0, x1, y1 int) error {
	r.epoch++
	var q pq
	// Seed in sorted tile order: map iteration order would make
	// zero-cost tie-breaking (and hence chosen routes) nondeterministic.
	seeds := make([]int32, 0, len(tree))
	for t := range tree {
		seeds = append(seeds, t)
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	for _, t := range seeds {
		r.dist[t] = 0
		r.prev[t] = -1
		r.visited[t] = r.epoch
		heap.Push(&q, pqItem{0, t})
	}
	found := false
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		t := it.tile
		if it.cost > r.dist[t] {
			continue
		}
		if t == target {
			found = true
			break
		}
		x, y := int(t)%r.w, int(t)/r.w
		for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			nx, ny := x+d[0], y+d[1]
			if nx < x0 || nx > x1 || ny < y0 || ny > y1 {
				continue
			}
			nt := int32(ny*r.w + nx)
			c := it.cost + r.nodeCost(nt)
			if r.visited[nt] != r.epoch || c < r.dist[nt] {
				r.visited[nt] = r.epoch
				r.dist[nt] = c
				r.prev[nt] = t
				heap.Push(&q, pqItem{c, nt})
			}
		}
	}
	if !found {
		return fmt.Errorf("target unreachable in region (%d,%d)-(%d,%d)", x0, y0, x1, y1)
	}
	// Commit the path; distances from the driver accumulate along it.
	var path []int32
	for t := target; t != -1; t = r.prev[t] {
		if _, onTree := tree[t]; onTree {
			path = append(path, t)
			break
		}
		path = append(path, t)
	}
	// path runs target .. joinpoint; the join point is on the tree.
	join := path[len(path)-1]
	base := tree[join]
	for i := len(path) - 2; i >= 0; i-- {
		t := path[i]
		base++
		tree[t] = base
		r.occ[t]++
	}
	return nil
}

// updateCongestion accumulates history cost and returns the number of
// overused tiles.
func (r *router) updateCongestion() int {
	over := 0
	for t := range r.occ {
		if int(r.occ[t]) > r.cap() {
			over++
			r.hist[t] += r.opt.HistFac * float64(int(r.occ[t])-r.cap())
		}
	}
	return over
}

// tileUsage exports the per-tile net counts.
func (r *router) tileUsage() map[arch.Loc]int {
	use := make(map[arch.Loc]int)
	for t := range r.occ {
		if r.occ[t] > 0 {
			use[r.loc(int32(t))] = int(r.occ[t])
		}
	}
	return use
}

// totalWire sums tree sizes (edges = nodes - 1).
func (r *router) totalWire() int {
	total := 0
	for _, tree := range r.trees {
		if len(tree) > 1 {
			total += len(tree) - 1
		}
	}
	return total
}

// critPath runs STA with routed wire lengths substituted for Manhattan
// distances. In the infinite-resource regime every connection can take
// a dedicated shortest route, so its delay is the Manhattan distance —
// this is exactly why Marquardt et al. call W∞ "a good placement
// evaluation metric" (wirelength still reports the shared Steiner
// trees, which is what unlimited routing would fan out from one pin).
func (r *router) critPath() (float64, error) {
	if r.infinite() {
		a, err := timing.Analyze(r.nl, r.pl, r.dm)
		if err != nil {
			return 0, err
		}
		return a.Period, nil
	}
	wireOf := func(u, v netlist.CellID) float64 {
		// Locate the connection: u drives some net read by v. Routed
		// lengths are recorded per (net, sink pin); take the shortest
		// pin if v reads the net on several pins.
		uc := r.nl.Cell(u)
		best := math.Inf(1)
		if uc.Out != netlist.None {
			for _, p := range r.nl.Net(uc.Out).Sinks {
				if p.Cell != v {
					continue
				}
				if l, ok := r.connLen[Conn{uc.Out, p}]; ok && float64(l) < best {
					best = float64(l)
				}
			}
		}
		if math.IsInf(best, 1) {
			// Unrouted (shouldn't happen); fall back to Manhattan.
			best = float64(arch.Dist(r.pl.Loc(u), r.pl.Loc(v)))
		}
		return r.dm.WireDelay(int(best))
	}
	a, err := timing.AnalyzeCustom(r.nl, wireOf, r.dm)
	if err != nil {
		return 0, err
	}
	return a.Period, nil
}

// MinChannelWidth binary-searches the smallest channel width that
// routes feasibly.
func MinChannelWidth(nl *netlist.Netlist, pl timing.Locator, f *arch.FPGA, dm arch.DelayModel, opt Options) (int, error) {
	lo, hi := 1, 2
	// Exponential probe for an upper bound.
	for {
		opt.ChannelWidth = hi
		res, err := Route(nl, pl, f, dm, opt)
		if err != nil {
			return 0, err
		}
		if res.Feasible {
			break
		}
		lo = hi + 1
		hi *= 2
		if hi > 4096 {
			return 0, fmt.Errorf("route: no feasible width up to %d", hi)
		}
	}
	for lo < hi {
		mid := (lo + hi) / 2
		opt.ChannelWidth = mid
		res, err := Route(nl, pl, f, dm, opt)
		if err != nil {
			return 0, err
		}
		if res.Feasible {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// LowStress routes with 20% more tracks than the minimum, the paper's
// W_ls regime. It returns the result and the width used.
func LowStress(nl *netlist.Netlist, pl timing.Locator, f *arch.FPGA, dm arch.DelayModel, opt Options) (*Result, int, error) {
	wmin, err := MinChannelWidth(nl, pl, f, dm, opt)
	if err != nil {
		return nil, 0, err
	}
	w := wmin + (wmin+4)/5 // ceil(1.2 × wmin)
	opt.ChannelWidth = w
	res, err := Route(nl, pl, f, dm, opt)
	if err != nil {
		return nil, 0, err
	}
	return res, w, nil
}

// Infinite routes with unbounded resources, the W∞ regime.
func Infinite(nl *netlist.Netlist, pl timing.Locator, f *arch.FPGA, dm arch.DelayModel, opt Options) (*Result, error) {
	opt.ChannelWidth = 0
	opt.MaxIters = 1
	return Route(nl, pl, f, dm, opt)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
