package route

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/timing"
)

func dm() arch.DelayModel { return arch.DelayModel{SegDelay: 1, LUTDelay: 2, IODelay: 0.5} }

type mapLoc map[netlist.CellID]arch.Loc

func (m mapLoc) Loc(id netlist.CellID) arch.Loc { return m[id] }

// straightChain: i -> l1 -> o on a line; trivially routable.
func straightChain(t *testing.T) (*netlist.Netlist, mapLoc, *arch.FPGA) {
	t.Helper()
	n := netlist.New("chain")
	i := n.AddCell("i", netlist.IPad, 0)
	l1 := n.AddCell("l1", netlist.LUT, 1)
	n.ConnectByName(l1.ID, 0, "i")
	o := n.AddCell("o", netlist.OPad, 1)
	n.ConnectByName(o.ID, 0, "l1")
	f := arch.New(6)
	loc := mapLoc{i.ID: {X: 0, Y: 3}, l1.ID: {X: 3, Y: 3}, o.ID: {X: 7, Y: 3}}
	return n, loc, f
}

func TestRouteStraightChain(t *testing.T) {
	n, loc, f := straightChain(t)
	res, err := Infinite(n, loc, f, dm(), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("infinite-resource routing must be feasible")
	}
	// Two nets: i->l1 (3 tiles of wire) and l1->o (4).
	if res.WireLength != 7 {
		t.Errorf("wire length = %d, want 7", res.WireLength)
	}
	// Post-route critical path equals the placement estimate on
	// detour-free routes: 3 + 2 + 4 + 0.5.
	if res.CritPath != 9.5 {
		t.Errorf("post-route period = %v, want 9.5", res.CritPath)
	}
	// Per-connection lengths.
	l1, _ := n.CellByName("l1")
	iID, _ := n.CellByName("i")
	c := Conn{n.Cell(iID).Out, netlist.Pin{Cell: l1, Input: 0}}
	if res.ConnLen[c] != 3 {
		t.Errorf("conn length i->l1 = %d, want 3", res.ConnLen[c])
	}
}

func TestRouteFanout(t *testing.T) {
	// One driver, two sinks sharing a trunk: Steiner sharing should
	// keep wirelength below the sum of point-to-point distances.
	n := netlist.New("fan")
	i := n.AddCell("i", netlist.IPad, 0)
	a := n.AddCell("a", netlist.LUT, 1)
	n.ConnectByName(a.ID, 0, "i")
	b := n.AddCell("b", netlist.LUT, 1)
	n.ConnectByName(b.ID, 0, "i")
	oa := n.AddCell("oa", netlist.OPad, 1)
	n.ConnectByName(oa.ID, 0, "a")
	ob := n.AddCell("ob", netlist.OPad, 1)
	n.ConnectByName(ob.ID, 0, "b")
	f := arch.New(8)
	loc := mapLoc{
		i.ID: {X: 0, Y: 4},
		a.ID: {X: 6, Y: 3}, b.ID: {X: 6, Y: 5},
		oa.ID: {X: 9, Y: 3}, ob.ID: {X: 9, Y: 5},
	}
	res, err := Infinite(n, loc, f, dm(), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	iNet := n.Cell(i.ID).Out
	// Point-to-point: 7 + 7 = 14; a shared trunk does better.
	treeWire := 0
	for _, c := range []Conn{
		{iNet, netlist.Pin{Cell: a.ID, Input: 0}},
		{iNet, netlist.Pin{Cell: b.ID, Input: 0}},
	} {
		if res.ConnLen[c] < 7 {
			t.Errorf("connection %v shorter than Manhattan distance: %d", c, res.ConnLen[c])
		}
		treeWire = res.ConnLen[c]
	}
	_ = treeWire
	if res.WireLength >= 14+6 {
		t.Errorf("total wire %d suggests no trunk sharing", res.WireLength)
	}
}

func TestCongestionForcesDetour(t *testing.T) {
	// Two parallel nets cross the same corridor; with width 1 one must
	// detour, with width 2 both go straight.
	n := netlist.New("cong")
	i1 := n.AddCell("i1", netlist.IPad, 0)
	i2 := n.AddCell("i2", netlist.IPad, 0)
	l1 := n.AddCell("l1", netlist.LUT, 1)
	n.ConnectByName(l1.ID, 0, "i1")
	l2 := n.AddCell("l2", netlist.LUT, 1)
	n.ConnectByName(l2.ID, 0, "i2")
	o1 := n.AddCell("o1", netlist.OPad, 1)
	n.ConnectByName(o1.ID, 0, "l1")
	o2 := n.AddCell("o2", netlist.OPad, 1)
	n.ConnectByName(o2.ID, 0, "l2")
	f := arch.New(6)
	// Both nets want row 3: i1/i2 on the west ring (same column),
	// LUTs stacked at x=3 rows 3/4, pads crossing.
	loc := mapLoc{
		i1.ID: {X: 0, Y: 3}, i2.ID: {X: 0, Y: 4},
		l1.ID: {X: 3, Y: 4}, l2.ID: {X: 3, Y: 3},
		o1.ID: {X: 7, Y: 4}, o2.ID: {X: 7, Y: 3},
	}
	opt := Defaults()
	opt.ChannelWidth = 2
	res2, err := Route(n, loc, f, dm(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Feasible {
		t.Fatal("width 2 should be feasible")
	}
	opt.ChannelWidth = 1
	res1, err := Route(n, loc, f, dm(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Feasible && res1.WireLength < res2.WireLength {
		t.Errorf("width-1 routing used less wire (%d) than width-2 (%d)",
			res1.WireLength, res2.WireLength)
	}
}

// placedRandom builds and places a random circuit for end-to-end
// router tests.
func placedRandom(t *testing.T, seed int64, luts int) (*netlist.Netlist, timing.Locator, *arch.FPGA) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := netlist.New("r")
	var signals []string
	for i := 0; i < 6; i++ {
		name := "i" + string(rune('0'+i))
		n.AddCell(name, netlist.IPad, 0)
		signals = append(signals, name)
	}
	for i := 0; i < luts; i++ {
		name := "l" + itoa(i)
		k := 1 + rng.Intn(3)
		c := n.AddCell(name, netlist.LUT, k)
		for p := 0; p < k; p++ {
			c2 := signals[len(signals)-1-rng.Intn(minInt(len(signals), 10))]
			n.ConnectByName(c.ID, p, c2)
		}
		signals = append(signals, name)
	}
	for i := 0; i < 6; i++ {
		c := n.AddCell("o"+string(rune('0'+i)), netlist.OPad, 1)
		n.ConnectByName(c.ID, 0, signals[len(signals)-1-rng.Intn(luts)])
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	f := arch.MinSquare(n.NumLUTs(), n.NumIOs())
	opts := place.Defaults()
	opts.Seed = seed
	opts.Effort = 1
	pl, err := place.Place(n, f, opts)
	if err != nil {
		t.Fatal(err)
	}
	return n, pl, f
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestMinChannelWidthAndLowStress(t *testing.T) {
	n, pl, f := placedRandom(t, 21, 60)
	wmin, err := MinChannelWidth(n, pl, f, dm(), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if wmin < 1 {
		t.Fatalf("wmin = %d", wmin)
	}
	// Feasible at wmin, infeasible at wmin-1.
	opt := Defaults()
	opt.ChannelWidth = wmin
	res, err := Route(n, pl, f, dm(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Error("routing at wmin must be feasible")
	}
	if wmin > 1 {
		opt.ChannelWidth = wmin - 1
		res, err = Route(n, pl, f, dm(), opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Feasible {
			t.Error("routing below wmin should be infeasible")
		}
	}
	// Low-stress: W∞ period <= W_ls period (more freedom can only help),
	// and both feasible.
	ls, w, err := LowStress(n, pl, f, dm(), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if w < wmin {
		t.Errorf("low-stress width %d below wmin %d", w, wmin)
	}
	if !ls.Feasible {
		t.Error("low-stress routing must be feasible")
	}
	inf, err := Infinite(n, pl, f, dm(), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if inf.CritPath > ls.CritPath+1e-9 {
		t.Errorf("W∞ period %v worse than W_ls %v", inf.CritPath, ls.CritPath)
	}
	// Routed lengths are never shorter than Manhattan distances, so
	// the routed period is at least the placement-level period.
	a, err := timing.Analyze(n, pl, dm())
	if err != nil {
		t.Fatal(err)
	}
	if inf.CritPath < a.Period-1e-9 {
		t.Errorf("post-route period %v beats placement estimate %v", inf.CritPath, a.Period)
	}
}

func TestRouteDeterministic(t *testing.T) {
	n, pl, f := placedRandom(t, 33, 40)
	r1, err := Infinite(n, pl, f, dm(), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Infinite(n, pl, f, dm(), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if r1.WireLength != r2.WireLength || r1.CritPath != r2.CritPath {
		t.Error("router is not deterministic")
	}
}

func TestTileUsage(t *testing.T) {
	n, loc, f := straightChain(t)
	res, err := Infinite(n, loc, f, dm(), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TileUsage) == 0 {
		t.Fatal("TileUsage empty")
	}
	// The chain is routed along row 3: every tile on it is used.
	for x := int16(0); x <= 7; x++ {
		if res.TileUsage[arch.Loc{X: x, Y: 3}] == 0 {
			t.Errorf("tile (%d,3) unused on a straight-line route", x)
		}
	}
	// Total usage is consistent with wirelength: a tree with k edges
	// touches k+1 tiles.
	total := 0
	for _, u := range res.TileUsage {
		total += u
	}
	if total != res.WireLength+n.NumNets() {
		t.Errorf("usage total %d, want wire %d + nets %d", total, res.WireLength, n.NumNets())
	}
}
