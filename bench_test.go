// Benchmarks regenerating the paper's tables and figures, plus
// micro-benchmarks of the core algorithms and ablations of the design
// choices called out in DESIGN.md.
//
// Table/figure benches run the full generate → place → optimize →
// route pipeline on scaled-down versions of the MCNC-20 stand-ins (the
// full-size runs live in cmd/experiments); what matters for the
// reproduction is the *shape* — who wins and by roughly what factor —
// which is preserved under scaling. Each bench reports the paper's
// headline metric as a custom unit next to ns/op.
package repro_test

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/flow"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/timing"
)

// benchCfg is the scaled-down pipeline configuration used by the
// table benches.
func benchCfg() flow.Config {
	cfg := flow.Defaults()
	cfg.Scale = 0.05
	cfg.PlaceEffort = 1
	cfg.LocalRepRuns = 2
	return cfg
}

// benchSuite is a representative small/large subset (full 20-circuit
// sweeps are cmd/experiments territory).
func benchSuite() []circuits.MCNCSpec {
	names := []string{"ex5p", "tseng", "dsip", "pdc"}
	var out []circuits.MCNCSpec
	for _, n := range names {
		s, _ := circuits.ByName(n)
		out = append(out, s)
	}
	return out
}

// BenchmarkTable1BaselineVPR regenerates Table I: the timing-driven
// place-and-route baseline (W∞/W_ls critical path, routed wirelength).
func BenchmarkTable1BaselineVPR(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		var winf, wls float64
		for _, spec := range benchSuite() {
			bl, err := flow.RunBaseline(spec, cfg)
			if err != nil {
				b.Fatal(err)
			}
			winf += bl.Metrics.WInf
			wls += bl.Metrics.WLs
		}
		b.ReportMetric(wls/winf, "Wls/Winf")
	}
}

// benchAlgorithm runs one optimizer over the bench suite and reports
// the paper's headline normalized W∞ average.
func benchAlgorithm(b *testing.B, algo flow.Algorithm) {
	cfg := benchCfg()
	var bases []*flow.Baseline
	for _, spec := range benchSuite() {
		bl, err := flow.RunBaseline(spec, cfg)
		if err != nil {
			b.Fatal(err)
		}
		bases = append(bases, bl)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		norm := 0.0
		for _, bl := range bases {
			r, err := flow.RunAlgorithm(bl, algo, cfg)
			if err != nil {
				b.Fatal(err)
			}
			norm += r.Norm[0]
		}
		b.ReportMetric(norm/float64(len(bases)), "Winf/VPR")
	}
}

// BenchmarkTable2LocalReplication, ...RTEmbedding, and ...Lex3
// regenerate the three data sets of Table II.
func BenchmarkTable2LocalReplication(b *testing.B) { benchAlgorithm(b, flow.LocalRep) }
func BenchmarkTable2RTEmbedding(b *testing.B)      { benchAlgorithm(b, flow.RTEmbed) }
func BenchmarkTable2Lex3(b *testing.B)             { benchAlgorithm(b, flow.Lex3) }

// BenchmarkTable3LexVariants regenerates Table III: all engine
// variants, averages only.
func BenchmarkTable3LexVariants(b *testing.B) {
	cfg := benchCfg()
	cfg.SkipRouting = true // Table III compares averages; placement-level is the shape
	var bases []*flow.Baseline
	for _, spec := range benchSuite() {
		bl, err := flow.RunBaseline(spec, cfg)
		if err != nil {
			b.Fatal(err)
		}
		bases = append(bases, bl)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, algo := range flow.EngineAlgorithms {
			norm := 0.0
			for _, bl := range bases {
				r, err := flow.RunAlgorithm(bl, algo, cfg)
				if err != nil {
					b.Fatal(err)
				}
				norm += r.Norm[0]
			}
			b.ReportMetric(norm/float64(len(bases)), algo.String()+"/VPR")
		}
	}
}

// BenchmarkFig14ReplicationStats regenerates the Fig. 14 series:
// replicated vs unified cells over the engine's iterations on the
// ex1010 stand-in.
func BenchmarkFig14ReplicationStats(b *testing.B) {
	cfg := benchCfg()
	cfg.SkipRouting = true
	spec, _ := circuits.ByName("ex1010")
	bl, err := flow.RunBaseline(spec, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := flow.RunAlgorithm(bl, flow.RTEmbed, cfg)
		if err != nil {
			b.Fatal(err)
		}
		st := r.EngineStats
		b.ReportMetric(float64(st.Replicated), "replicated")
		b.ReportMetric(float64(st.Unified), "unified")
		b.ReportMetric(float64(st.Replicated-st.Unified), "net")
	}
}

// ---------------------------------------------------------------------
// Micro-benchmarks of the core algorithms.

// benchGrid builds a g×g embedding window with a three-leaf tree, the
// typical shape the engine hands to the embedder.
func embedProblem(g int, mode embed.Mode) *embed.Problem {
	grid := embed.NewGrid(embed.GridSpec{W: g, H: g, WireCost: 1, WireDelay: 1})
	v := func(x, y int) embed.Vertex { return embed.Vertex(y*g + x) }
	tree := &embed.Tree{
		Nodes: []embed.Node{
			{Vertex: v(0, 0), Arr: 0},
			{Vertex: v(0, g-1), Arr: 2},
			{Vertex: v(g/2, 0), Arr: 1},
			{Children: []embed.NodeID{0, 1}, Intrinsic: 2},
			{Children: []embed.NodeID{3, 2}, Intrinsic: 2},
			{Children: []embed.NodeID{4}, Vertex: v(g-1, g-1), Intrinsic: 2},
		},
		Root: 5,
	}
	return &embed.Problem{
		G: grid, T: tree, Mode: mode,
		PlaceCost:    func(n embed.NodeID, vv embed.Vertex) float64 { return float64(vv%7) * 0.1 },
		MaxPerVertex: 8, DelayQuantum: 0.25,
	}
}

func BenchmarkEmbed2D(b *testing.B) {
	p := embedProblem(24, embed.Mode{LexDepth: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmbedLex3(b *testing.B) {
	p := embedProblem(24, embed.Mode{LexDepth: 3})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmbedLex5(b *testing.B) {
	p := embedProblem(24, embed.Mode{LexDepth: 5})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmbedElmore(b *testing.B) {
	p := embedProblem(24, embed.Mode{LexDepth: 1, Delay: embed.ElmoreDelay, GateR: 0.5})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// The Parallel variants run the same instances with the worker pool at
// GOMAXPROCS; the serial benchmarks above (Parallelism unset) remain
// comparable across commits. Results are bit-identical either way —
// see determinism_test.go — so these measure scheduling overhead vs
// fan-out gain at the current core count.

func benchEmbedParallel(b *testing.B, mode embed.Mode) {
	p := embedProblem(24, mode)
	p.Parallelism = runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmbed2DParallel(b *testing.B) {
	benchEmbedParallel(b, embed.Mode{LexDepth: 1})
}

func BenchmarkEmbedLex3Parallel(b *testing.B) {
	benchEmbedParallel(b, embed.Mode{LexDepth: 3})
}

// BenchmarkBatchEmbed measures the batch-embedding pass: a design's
// worth of fanin-tree problems pushed through embed.SolveBatch with a
// shared worker pool and pooled scratch, against the same problems
// solved one at a time. Results are bit-identical either way (see
// internal/oracle TestBatchEmbedAgreement); the delta is pure
// scheduling and arena-reuse gain.
func BenchmarkBatchEmbed(b *testing.B) {
	mkBatch := func() []*embed.Problem {
		modes := []embed.Mode{
			{LexDepth: 1},
			{LexDepth: 3},
			{LexDepth: 1, Delay: embed.QuadraticDelay},
		}
		var probs []*embed.Problem
		for i := 0; i < 12; i++ {
			probs = append(probs, embedProblem(10+2*(i%3), modes[i%len(modes)]))
		}
		return probs
	}
	b.Run("serial", func(b *testing.B) {
		probs := mkBatch()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, errs := embed.SolveBatch(context.Background(), probs, 1)
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	// At least two workers so the shared-queue path runs even on one
	// core (there it measures pure scheduling overhead; the gain needs
	// cores).
	batchWorkers := runtime.GOMAXPROCS(0)
	if batchWorkers < 2 {
		batchWorkers = 2
	}
	b.Run(fmt.Sprintf("batched/workers=%d", batchWorkers), func(b *testing.B) {
		probs := mkBatch()
		w := batchWorkers
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, errs := embed.SolveBatch(context.Background(), probs, w)
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func benchNetlist(b *testing.B, luts int) *netlist.Netlist {
	b.Helper()
	spec, _ := circuits.ByName("apex2")
	s := spec.Spec(1)
	s.LUTs = luts
	s.Inputs, s.Outputs = 16, 16
	nl, err := circuits.Generate(s)
	if err != nil {
		b.Fatal(err)
	}
	return nl
}

func benchSTA(b *testing.B, workers int) {
	nl := benchNetlist(b, 2000)
	f := arch.MinSquare(nl.NumLUTs(), nl.NumIOs())
	opts := place.Defaults()
	opts.Effort = 0.3
	pl, err := place.Place(nl, f, opts)
	if err != nil {
		b.Fatal(err)
	}
	dm := arch.DefaultDelayModel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := timing.AnalyzeWorkers(nl, pl, dm, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSTA pins the serial pass (workers=1) so ns/op stays
// comparable across machines; the Parallel variant fans arrival
// propagation out per level at GOMAXPROCS.
func BenchmarkSTA(b *testing.B)         { benchSTA(b, 1) }
func BenchmarkSTAParallel(b *testing.B) { benchSTA(b, runtime.GOMAXPROCS(0)) }

// benchEngineIterate measures steady-state Fig. 11 iteration latency
// in the small-perturbation regime the incremental engine targets: the
// design is converged once (untimed), then every op nudges the LUT
// with the most timing slack between two slots and re-optimizes on the
// same engine — the interactive "move a cell, re-run" loop that
// ROADMAP open item 3 wants sub-second. The full/incremental pair
// differ only in Config.Incremental — their outputs are bit-identical
// (see internal/core TestIncrementalEngineMatchesFull) — so the
// ms/iter ratio is the pure reuse win of dirty-region STA, SPT
// patching, and frontier memoization; reuse% reports the
// frontier-cache hit rate over the measured ops.
func benchEngineIterate(b *testing.B, luts int, incremental bool) {
	nl := benchNetlist(b, luts)
	f := arch.MinSquare(nl.NumLUTs(), nl.NumIOs())
	opts := place.Defaults()
	opts.Effort = 0.3
	pl, err := place.Place(nl, f, opts)
	if err != nil {
		b.Fatal(err)
	}
	dm := arch.DefaultDelayModel()
	cfg := core.Default()
	cfg.Incremental = incremental
	cfg.MaxIters = 60
	cfg.Patience = 8
	e := core.New(nl, pl, dm, cfg)
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
	// Perturbation: toggle the slack-richest LUT between its home slot
	// and the nearest free one — a real placement change whose timing
	// impact its slack absorbs, so the design stays converged.
	a, err := timing.AnalyzeWorkers(e.Netlist, e.Placement, dm, 1)
	if err != nil {
		b.Fatal(err)
	}
	victim, slack := netlist.CellID(netlist.None), math.Inf(-1)
	e.Netlist.Cells(func(c *netlist.Cell) {
		if c.Kind != netlist.LUT || !e.Placement.Placed(c.ID) {
			return
		}
		if s := a.Period - a.Through[c.ID]; s > slack {
			victim, slack = c.ID, s
		}
	})
	if victim == netlist.None {
		b.Fatal("no placed LUT to perturb")
	}
	home := e.Placement.Loc(victim)
	alts := e.Placement.NearestFreeSlots(home, 2)
	if len(alts) == 0 {
		b.Fatal("no free slot for perturbation")
	}
	// Each op is one small-perturbation episode from the converged
	// base: restore the base (untimed harness work), nudge the victim,
	// re-optimize. The engine is deterministic, so episodes with the
	// same nudge replay identically — which is precisely what the
	// frontier cache exploits and the full path recomputes.
	baseNL, basePL := e.Netlist.Clone(), e.Placement.Clone()
	episode := func(i int) {
		e.Netlist, e.Placement = baseNL.Clone(), basePL.Clone()
		e.Placement.Remove(victim)
		e.Placement.Place(victim, alts[i%len(alts)])
	}
	e.Config.MaxIters, e.Config.Patience = 3, 3
	var warm *core.Stats
	for i := 0; i < 4; i++ { // visit each episode twice: two-touch admission
		episode(i)
		if warm, err = e.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	iters := 0
	var last *core.Stats
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		episode(i)
		b.StartTimer()
		st, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		iters += st.Iterations
		last = st
	}
	b.StopTimer()
	if iters > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/1e6/float64(iters), "ms/iter")
	}
	// Incremental counters are engine-lifetime cumulative; the delta
	// over the measured ops is the steady-state reuse rate.
	if last != nil {
		hits := last.Incremental.FrontierHits - warm.Incremental.FrontierHits
		misses := last.Incremental.FrontierMisses - warm.Incremental.FrontierMisses
		if hits+misses > 0 {
			b.ReportMetric(100*float64(hits)/float64(hits+misses), "reuse%")
		}
	}
}

func BenchmarkEngineIterate(b *testing.B) {
	for _, size := range []int{600, 2000} {
		for _, m := range []struct {
			name string
			inc  bool
		}{{"full", false}, {"incremental", true}} {
			b.Run(fmt.Sprintf("%s/luts=%d", m.name, size), func(b *testing.B) {
				benchEngineIterate(b, size, m.inc)
			})
		}
	}
}

func BenchmarkPlaceAnneal(b *testing.B) {
	nl := benchNetlist(b, 400)
	f := arch.MinSquare(nl.NumLUTs(), nl.NumIOs())
	for i := 0; i < b.N; i++ {
		opts := place.Defaults()
		opts.Effort = 1
		opts.Seed = int64(i + 1)
		if _, err := place.Place(nl, f, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRouteInfinite(b *testing.B) {
	nl := benchNetlist(b, 600)
	f := arch.MinSquare(nl.NumLUTs(), nl.NumIOs())
	opts := place.Defaults()
	opts.Effort = 1
	pl, err := place.Place(nl, f, opts)
	if err != nil {
		b.Fatal(err)
	}
	dm := arch.DefaultDelayModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := route.Infinite(nl, pl, f, dm, route.Defaults()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRouteLowStress(b *testing.B) {
	nl := benchNetlist(b, 300)
	f := arch.MinSquare(nl.NumLUTs(), nl.NumIOs())
	opts := place.Defaults()
	opts.Effort = 1
	pl, err := place.Place(nl, f, opts)
	if err != nil {
		b.Fatal(err)
	}
	dm := arch.DefaultDelayModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := route.LowStress(nl, pl, f, dm, route.Defaults()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Ablations of the design choices DESIGN.md calls out.

// ablationDesign builds one placed mid-size circuit for engine
// ablations.
func ablationDesign(b *testing.B) (*netlist.Netlist, *flow.Baseline) {
	b.Helper()
	cfg := benchCfg()
	cfg.SkipRouting = true
	spec, _ := circuits.ByName("seq")
	bl, err := flow.RunBaseline(spec, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return bl.Netlist, bl
}

func benchEngineConfig(b *testing.B, mutate func(*core.Config)) {
	_, bl := ablationDesign(b)
	dm := arch.DefaultDelayModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.Default()
		mutate(&cfg)
		eng := core.New(bl.Netlist.Clone(), bl.Placement.Clone(), dm, cfg)
		st, err := eng.Run()
		if err != nil {
			b.Fatal(err)
		}
		if st.FinalPeriod > st.InitialPeriod {
			b.Fatal("engine worsened the period")
		}
		b.ReportMetric(st.FinalPeriod/st.InitialPeriod, "period/VPR")
		b.ReportMetric(float64(st.Replicated-st.Unified), "net-repl")
	}
}

// BenchmarkAblationAggressiveUnify isolates the Section VII-B
// aggressive unification strategy.
func BenchmarkAblationAggressiveUnify(b *testing.B) {
	benchEngineConfig(b, func(c *core.Config) { c.AggressiveUnify = true })
}

func BenchmarkAblationConservativeUnify(b *testing.B) {
	benchEngineConfig(b, func(c *core.Config) { c.AggressiveUnify = false })
}

// BenchmarkAblationNoFFRelocation isolates the Section V-D FF
// relocation feature.
func BenchmarkAblationNoFFRelocation(b *testing.B) {
	benchEngineConfig(b, func(c *core.Config) { c.FFRelocation = false })
}

// BenchmarkAblationExactEmbedder removes the per-vertex solution cap
// (MaxPerVertex), trading runtime for exactness.
func BenchmarkAblationExactEmbedder(b *testing.B) {
	benchEngineConfig(b, func(c *core.Config) {
		c.MaxPerVertex = 0
		c.DelayQuantumFrac = 0
	})
}

// BenchmarkAblationSmallEps vs LargeEps probes the ε growth schedule
// of Section V-B.
func BenchmarkAblationSmallEps(b *testing.B) {
	benchEngineConfig(b, func(c *core.Config) { c.EpsStep = 0.01 })
}

func BenchmarkAblationLargeEps(b *testing.B) {
	benchEngineConfig(b, func(c *core.Config) { c.EpsStep = 0.20 })
}

// BenchmarkWmin measures the channel-width binary search, the dominant
// cost of low-stress evaluation.
func BenchmarkWmin(b *testing.B) {
	nl := benchNetlist(b, 200)
	f := arch.MinSquare(nl.NumLUTs(), nl.NumIOs())
	opts := place.Defaults()
	opts.Effort = 1
	pl, err := place.Place(nl, f, opts)
	if err != nil {
		b.Fatal(err)
	}
	dm := arch.DefaultDelayModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := route.MinChannelWidth(nl, pl, f, dm, route.Defaults())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(w), "wmin")
	}
}

// Example-level sanity: the shape claims should hold even at bench
// scale. This is a test (not a benchmark) so a plain `go test` at the
// repo root exercises one full pipeline end to end.
func TestShapeHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline; skipped in -short")
	}
	cfg := benchCfg()
	cfg.SkipRouting = true
	spec, _ := circuits.ByName("ex5p")
	bl, err := flow.RunBaseline(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := flow.RunAlgorithm(bl, flow.RTEmbed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Norm[0] > 1.0+1e-9 {
		t.Errorf("RT-Embedding worsened W-inf: %.3f", rt.Norm[0])
	}
	lr, err := flow.RunAlgorithm(bl, flow.LocalRep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline: RT-Embedding beats local replication.
	if rt.Norm[0] > lr.Norm[0]+0.05 {
		t.Errorf("RT-Embedding (%.3f) should not lose clearly to local replication (%.3f)",
			rt.Norm[0], lr.Norm[0])
	}
	if math.IsNaN(rt.Norm[2]) || rt.Norm[2] <= 0 {
		t.Errorf("wire norm = %v", rt.Norm[2])
	}
	fmt.Printf("shape: RT %.3f vs LocalRep %.3f (normalized W-inf)\n", rt.Norm[0], lr.Norm[0])
}

// BenchmarkAblationCongestionFeedback exercises the Section VIII
// extension: the baseline's routed channel occupancy biases the
// embedding graph's wire costs.
func BenchmarkAblationCongestionFeedback(b *testing.B) {
	cfg := benchCfg()
	cfg.CongestionFeedback = true
	spec, _ := circuits.ByName("seq")
	bl, err := flow.RunBaseline(spec, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := flow.RunAlgorithm(bl, flow.RTEmbed, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Norm[0], "Winf/VPR")
		b.ReportMetric(r.Norm[2], "wire/VPR")
	}
}
