GO ?= go

# Benchmarks included in `make bench` (full pipeline benches are
# cmd/experiments territory and too slow for a default target).
BENCH ?= ^(BenchmarkEmbed|BenchmarkSTA)
BENCHTIME ?= 1s

.PHONY: build test race vet lint assert check bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race suite: -short keeps the randomized sweeps small so the whole
# thing stays well under two minutes.
race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# replint is the project's own static analyzer (cmd/replint): custom
# determinism/correctness rules the parallel solver depends on. Zero
# unsuppressed findings is part of `make check`.
lint:
	$(GO) run ./cmd/replint ./...

# Runtime invariant layer: built with -tags replassert, the embedder and
# the STA re-verify their structural invariants (prune staircase, wave
# pop order, arrival recurrence) on every run of the regular suites.
assert:
	$(GO) test -tags replassert ./internal/embed/... ./internal/timing/...

# The full gate, in CI order: compile, vet, lint, plain tests, the
# asserting build, then the race suite.
check: build vet lint test assert race

# Runs the embedder/STA micro-benchmarks and records machine-readable
# results in BENCH_embed.json (text copy in BENCH_embed.txt).
bench: build
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchtime $(BENCHTIME) -benchmem . | tee BENCH_embed.txt
	$(GO) run ./cmd/benchjson < BENCH_embed.txt > BENCH_embed.json

clean:
	rm -f BENCH_embed.txt BENCH_embed.json
