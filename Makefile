GO ?= go

# Benchmarks included in `make bench` (full pipeline benches are
# cmd/experiments territory and too slow for a default target).
BENCH ?= ^(BenchmarkEmbed|BenchmarkSTA)
BENCHTIME ?= 1s

# `make bench-json` records the PR perf trajectory: the steady-state
# engine-iteration benchmark (full vs incremental), serialized by
# cmd/benchjson into BENCH_JSON. Set BASELINE to a previous file to
# attach vs_baseline speedups.
ENGINE_BENCH ?= ^(BenchmarkEngineIterate|BenchmarkBatchEmbed)$$
ENGINE_BENCHTIME ?= 5x
BENCH_JSON ?= BENCH_0009.json
BASELINE ?=

# repld daemon defaults for `make serve` / `make loadtest`.
ADDR ?= :8080
WORKERS ?= 2
QUEUE ?= 64
JOBS ?= 50
CONCURRENCY ?= 8

.PHONY: build test race vet lint lint-cold assert oracle cover serve-race check bench bench-json serve loadtest clean

# Coverage floor for the differentially-tested packages (per-package,
# percent of statements). The oracle exists to exercise the embedder;
# a coverage drop there means a check family silently stopped running.
COVER_MIN ?= 80
COVER_PKGS = ./internal/embed ./internal/oracle

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race suite: -short keeps the randomized sweeps small so the whole
# thing stays well under two minutes.
race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# replint is the project's own static analyzer (cmd/replint): the
# lexical determinism/correctness rules plus the module-wide dataflow
# suite (detflow nondeterminism taint, ctxstride cancellation polling,
# hotalloc DP-hot-path allocations, shardwrite worker-shard writes) and
# the points-to layer (aliasrace, arenaescape, chanshare).
# Zero unsuppressed findings is part of `make check`; see
# `go run ./cmd/replint -rules` for the catalog.
#
# `make lint` uses the incremental fact cache (REPLINT_CACHE, default
# .replint-cache): unchanged packages replay stored findings without
# reloading the module. `make lint-cold` bypasses the cache for a
# from-scratch run.
REPLINT_CACHE ?= .replint-cache

lint:
	$(GO) run ./cmd/replint -cache-dir $(REPLINT_CACHE) ./...

lint-cold:
	$(GO) run ./cmd/replint -no-cache ./...

# Runtime invariant layer: built with -tags replassert, the embedder and
# the STA re-verify their structural invariants (prune staircase, wave
# pop order, arrival recurrence) on every run of the regular suites.
assert:
	$(GO) test -tags replassert ./internal/embed/... ./internal/timing/...

# The correctness oracle (internal/oracle): brute-force frontier
# agreement against the embedding DP, functional-equivalence and
# invariant checks on full engine runs, and the rename/translation
# metamorphic suite. -short keeps it inside the `make check` budget;
# drop it (or run cmd/replcheck) for the full sweep. The run doubles as
# the coverage measurement for the `cover` gate (cover.out).
oracle:
	$(GO) test -short -count 1 -coverprofile=cover.out -coverpkg=./internal/embed/...,./internal/oracle/... $(COVER_PKGS)

# Coverage gate: the differentially-tested packages must stay above
# COVER_MIN% statement coverage, as measured by the oracle run.
cover: oracle
	@$(GO) tool cover -func=cover.out | awk -v min=$(COVER_MIN) '\
		/^total:/ { sub(/%/, "", $$3); \
			if ($$3 + 0 < min) { printf "coverage %.1f%% below floor %d%%\n", $$3, min; exit 1 } \
			else { printf "coverage %.1f%% (floor %d%%)\n", $$3, min } }'

# The service and cluster layers are concurrency-dense (worker pool,
# drain, quorum fan-out, singleflight, shared counters), so their tests
# always run under the race detector — without -short, unlike the
# repo-wide race sweep.
serve-race:
	$(GO) test -race -count 1 ./internal/serve/... ./internal/cluster/...
	$(GO) test -race -count 1 -run TestRunContext ./internal/core/

# The full gate, in CI order: compile, vet, lint (incl. internal/serve),
# plain tests, the asserting build, the oracle + coverage gate, the
# race suite, then the service race suite.
check: build vet lint test assert cover race serve-race

# Runs the embedder/STA micro-benchmarks and records machine-readable
# results in BENCH_embed.json (text copy in BENCH_embed.txt).
bench: build
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchtime $(BENCHTIME) -benchmem . | tee BENCH_embed.txt
	$(GO) run ./cmd/benchjson < BENCH_embed.txt > BENCH_embed.json

# Steady-state iteration latency, full vs incremental, committed as the
# perf-trajectory artifact ($(BENCH_JSON)). The within-file full/* vs
# incremental/* pair is this PR's before/after; across PRs, pass
# BASELINE=BENCH_NNNN.json to chain speedups file to file.
bench-json: build
	$(GO) test -run '^$$' -bench '$(ENGINE_BENCH)' -benchtime $(ENGINE_BENCHTIME) -benchmem . | tee $(BENCH_JSON:.json=.txt)
	$(GO) run ./cmd/benchjson $(if $(BASELINE),-baseline $(BASELINE)) < $(BENCH_JSON:.json=.txt) > $(BENCH_JSON)

# Run the replication daemon locally (Ctrl-C / SIGTERM drains).
serve: build
	$(GO) run ./cmd/repld -addr $(ADDR) -workers $(WORKERS) -queue $(QUEUE)

# Load-test a running daemon: JOBS jobs at CONCURRENCY in-flight, with
# latency percentiles and a determinism cross-check.
loadtest:
	$(GO) run ./cmd/replload -addr http://localhost$(ADDR) -n $(JOBS) -concurrency $(CONCURRENCY)

clean:
	rm -f BENCH_embed.txt BENCH_embed.json BENCH_0006.txt BENCH_0009.txt cover.out
	rm -rf .replint-cache
