GO ?= go

# Benchmarks included in `make bench` (full pipeline benches are
# cmd/experiments territory and too slow for a default target).
BENCH ?= ^(BenchmarkEmbed|BenchmarkSTA)
BENCHTIME ?= 1s

.PHONY: build test race vet bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race suite: -short keeps the randomized sweeps small so the whole
# thing stays well under two minutes.
race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# Runs the embedder/STA micro-benchmarks and records machine-readable
# results in BENCH_embed.json (text copy in BENCH_embed.txt).
bench: build
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchtime $(BENCHTIME) -benchmem . | tee BENCH_embed.txt
	$(GO) run ./cmd/benchjson < BENCH_embed.txt > BENCH_embed.json

clean:
	rm -f BENCH_embed.txt BENCH_embed.json
